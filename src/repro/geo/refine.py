"""The vectorized refinement engine.

The accurate join spends its non-probe time PIP-testing candidate pairs.
Two independent costs dominate a naive implementation:

* **grouping** — finding each polygon's candidate points with one boolean
  mask per polygon is O(unique polygons x candidates); on many-polygon
  workloads the mask scans dwarf the PIP tests themselves;
* **testing** — the ray-crossing test is linear in the polygon's edge
  count, although only edges whose latitude interval contains the query
  latitude can ever cross the ray.

:class:`RefinementEngine` removes the first cost in one of two ways.
Small refinements use a single stable ``argsort`` over the candidate
polygon ids: the sorted order makes every polygon's candidates one
contiguous slice, so grouping is O(C log C) total instead of O(P x C).
Large refinements skip per-polygon dispatch entirely: the engine's
:class:`_FlatBucketTable` concatenates every polygon's buckets into one
ragged edge table, maps each ``(polygon, point)`` pair to its bucket row
arithmetically, and decides the whole candidate array with one
``repeat``/``bincount`` crossing kernel.  :class:`PolygonAccelerator`
removes the second cost with the interval idea of Kipf et al.'s
*Adaptive Geospatial Joins for Modern Hardware*: edges are packed, per
polygon, into uniform latitude buckets (an edge appears in every bucket
its latitude interval overlaps), and a point only tests the edges of its
own bucket.

Both layers reproduce :func:`repro.geo.pip.contains_points` bit for bit:
the crossing rule, the interpolation arithmetic, and the MBR filter are
identical, and an edge excluded by its bucket can never satisfy the
crossing rule for the excluded latitudes — so accept/reject decisions are
exactly those of the brute-force test, only computed against far fewer
edges.

Accelerators are memoized on the :class:`~repro.geo.polygon.Polygon`
objects themselves, so every snapshot, overlay, and compaction that
shares polygon instances also shares the packed edge arrays; a polygon
restored from serialization simply rebuilds its accelerator on first use.
"""

from __future__ import annotations

import threading
from collections.abc import Sequence

import numpy as np

from repro.geo.polygon import Polygon

#: Point/edge pairs evaluated per vectorized chunk (bounds temporaries),
#: matching :data:`repro.geo.pip._CHUNK_PAIRS`.
_CHUNK_PAIRS = 4_000_000

#: Bucket-count heuristic: aim for this many edges per latitude bucket.
_TARGET_EDGES_PER_BUCKET = 4

#: Upper bound on buckets per polygon (diminishing returns beyond this).
_MAX_BUCKETS = 64

#: Below this many point x edge pairs a single dense broadcast beats the
#: per-bucket loop (the bucket dispatch overhead would dominate); above
#: it, scanning only each point's bucket pays for itself.
_DENSE_PAIRS_CUTOFF = 200_000

#: Candidate-pair count that triggers building the flat table.  Smaller
#: refinements (micro-batches, churning overlays) stay on the per-group
#: path, so a mutation-heavy index never pays the table build.
_TABLE_MIN_PAIRS = 4096


class PolygonAccelerator:
    """Packed edge arrays with per-polygon latitude-interval buckets.

    The polygon's non-horizontal edges (horizontal edges never satisfy
    the half-open crossing rule) are replicated into every uniform
    latitude bucket their interval ``[min(y0, y1), max(y0, y1))``
    overlaps, stored contiguously per bucket (CSR layout) together with
    the precomputed interpolation terms — so a :meth:`contains` call
    scans only the edges whose latitude span can contain each point.

    Large batches walk the buckets (slice each bucket's edges once, test
    that bucket's points against them); small batches instead gather each
    point's bucket row from a padded ELL copy of the same buckets — one
    vectorized crossing test for the whole batch, with padding slots that
    can never satisfy the crossing rule.  When a skewed edge distribution
    would make the padding wasteful the ELL copy is skipped and small
    batches broadcast against the packed non-replicated edges.  All paths
    make bit-identical decisions.
    """

    __slots__ = (
        "mbr",
        "num_buckets",
        "num_edges",
        "lat_origin",
        "inv_bucket_height",
        "bucket_start",
        "y0",
        "y1",
        "x0",
        "dx",
        "inv_dy",
        "ey0",
        "ey1",
        "ex0",
        "edx",
        "einv_dy",
        "ell_y0",
        "ell_y1",
        "ell_x0",
        "ell_dx",
        "ell_inv_dy",
    )

    def __init__(self, polygon: Polygon, max_buckets: int = _MAX_BUCKETS):
        self.mbr = polygon.mbr
        x0, y0, x1, y1 = polygon.all_edges()
        keep = y0 != y1
        x0, y0, x1, y1 = x0[keep], y0[keep], x1[keep], y1[keep]
        self.num_edges = len(x0)
        # Dense-path arrays: every crossing-capable edge, packed once
        # (released below once the ELL copy supersedes them).
        self.y0 = y0
        self.y1 = y1
        self.x0 = x0
        self.dx = x1 - x0
        lo = np.minimum(y0, y1)
        hi = np.maximum(y0, y1)
        lat_lo = float(lo.min()) if len(lo) else 0.0
        lat_hi = float(hi.max()) if len(hi) else 0.0
        span = lat_hi - lat_lo
        if self.num_edges == 0 or span <= 0.0:
            # No edge can ever cross a ray; contains() is constant False.
            self.num_buckets = 1
            self.lat_origin = lat_lo
            self.inv_bucket_height = 0.0
            self.bucket_start = np.zeros(2, dtype=np.int64)
            empty = np.zeros(0, dtype=np.float64)
            self.inv_dy = empty
            self.ey0 = self.ey1 = self.ex0 = self.edx = self.einv_dy = empty
            self.ell_y0 = self.ell_y1 = self.ell_x0 = None
            self.ell_dx = self.ell_inv_dy = None
            return
        self.inv_dy = 1.0 / (y1 - y0)
        buckets = int(
            np.clip(self.num_edges // _TARGET_EDGES_PER_BUCKET, 1, max_buckets)
        )
        self.num_buckets = buckets
        self.lat_origin = lat_lo
        self.inv_bucket_height = buckets / span
        # An edge belongs to buckets bucket(lo)..bucket(hi) inclusive,
        # computed with the exact float expression points use, so the
        # monotone bucket function guarantees every latitude the edge can
        # cross falls in one of its buckets.
        b_lo = self._bucket_of(lo)
        b_hi = self._bucket_of(hi)
        replicas = b_hi - b_lo + 1
        total = int(replicas.sum())
        edge_of = np.repeat(np.arange(self.num_edges, dtype=np.int64), replicas)
        run_starts = np.cumsum(replicas) - replicas
        offsets = np.arange(total, dtype=np.int64) - np.repeat(run_starts, replicas)
        bucket_of = np.repeat(b_lo, replicas) + offsets
        order = np.argsort(bucket_of, kind="stable")
        packed = edge_of[order]
        histogram = np.bincount(bucket_of, minlength=buckets)
        self.bucket_start = np.zeros(buckets + 1, dtype=np.int64)
        np.cumsum(histogram, out=self.bucket_start[1:])
        # The same interpolation terms (and arithmetic order) as pip.py,
        # permuted into bucket-contiguous layout.
        self.ey0 = y0[packed]
        self.ey1 = y1[packed]
        self.ex0 = x0[packed]
        self.edx = self.dx[packed]
        self.einv_dy = self.inv_dy[packed]
        # Padded (ELL) copy of the buckets for small batches: row b holds
        # bucket b's edges, padded to the widest bucket with zero slots
        # whose y0 == y1 can never satisfy the crossing rule.  Skipped
        # when edge skew would make the padding dominate the memory, or
        # when there is only one bucket (the dense arrays already are
        # that bucket).
        widths = histogram
        width = int(widths.max())
        if buckets > 1 and width * buckets <= max(4 * total, 64):
            shape = (buckets, width)
            rows = np.repeat(np.arange(buckets), widths)
            cols = np.arange(total, dtype=np.int64) - np.repeat(
                self.bucket_start[:-1], widths
            )
            self.ell_y0 = np.zeros(shape)
            self.ell_y1 = np.zeros(shape)
            self.ell_x0 = np.zeros(shape)
            self.ell_dx = np.zeros(shape)
            self.ell_inv_dy = np.zeros(shape)
            self.ell_y0[rows, cols] = self.ey0
            self.ell_y1[rows, cols] = self.ey1
            self.ell_x0[rows, cols] = self.ex0
            self.ell_dx[rows, cols] = self.edx
            self.ell_inv_dy[rows, cols] = self.einv_dy
            # With the ELL copy present every dispatch path reads either
            # it or the bucketed CSR arrays; drop the dense copies so the
            # process-lifetime memoization doesn't pin a third edge copy.
            self.y0 = self.y1 = self.x0 = None
            self.dx = self.inv_dy = None
        else:
            self.ell_y0 = self.ell_y1 = self.ell_x0 = None
            self.ell_dx = self.ell_inv_dy = None

    def _bucket_of(self, lats: np.ndarray) -> np.ndarray:
        """Latitude -> bucket index, clipped into range (vectorized)."""
        raw = np.floor((lats - self.lat_origin) * self.inv_bucket_height)
        return np.clip(raw, 0, self.num_buckets - 1).astype(np.int64)

    @property
    def size_bytes(self) -> int:
        arrays = [self.bucket_start, self.y0, self.y1, self.x0, self.dx,
                  self.inv_dy, self.ey0, self.ey1, self.ex0, self.edx,
                  self.einv_dy, self.ell_y0, self.ell_y1, self.ell_x0,
                  self.ell_dx, self.ell_inv_dy]
        return int(sum(a.nbytes for a in arrays if a is not None))

    def contains(self, lngs: np.ndarray, lats: np.ndarray) -> np.ndarray:
        """Even-odd PIP test, bit-identical to ``contains_points``."""
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        result = np.zeros(lngs.shape, dtype=bool)
        self.contains_into(lngs, lats, result)
        return result

    def contains_into(
        self, lngs: np.ndarray, lats: np.ndarray, out: np.ndarray
    ) -> None:
        """In-place :meth:`contains` over float64 arrays (the hot path).

        Writes the decision for every point into ``out`` (same length as
        the inputs); entries for points outside the MBR are left
        untouched, so ``out`` must start False.  Exists so the engine's
        group-by loop can hand each polygon a contiguous slice of one
        shared output array instead of allocating per group.
        """
        if lngs.size == 0 or self.num_edges == 0:
            return
        mbr = self.mbr
        in_mbr = (
            (lngs >= mbr.lng_lo)
            & (lngs <= mbr.lng_hi)
            & (lats >= mbr.lat_lo)
            & (lats <= mbr.lat_hi)
        )
        idx = np.nonzero(in_mbr)[0]
        if idx.size == 0:
            return
        if idx.size * self.num_edges <= _DENSE_PAIRS_CUTOFF:
            if self.ell_y0 is not None:
                self._crossing_count_ell(idx, lngs, lats, out)
            else:
                self._crossing_count(
                    idx, lngs, lats,
                    self.y0, self.y1, self.x0, self.dx, self.inv_dy, out,
                )
            return
        buckets = self._bucket_of(lats[idx])
        order = np.argsort(buckets, kind="stable")
        sorted_idx = idx[order]
        sorted_buckets = buckets[order]
        distinct, group_starts = np.unique(sorted_buckets, return_index=True)
        group_ends = np.append(group_starts[1:], len(sorted_buckets))
        for bucket, lo, hi in zip(distinct.tolist(), group_starts, group_ends):
            es = int(self.bucket_start[bucket])
            ee = int(self.bucket_start[bucket + 1])
            if es == ee:
                continue
            self._crossing_count(
                sorted_idx[lo:hi], lngs, lats,
                self.ey0[es:ee], self.ey1[es:ee], self.ex0[es:ee],
                self.edx[es:ee], self.einv_dy[es:ee], out,
            )

    def _crossing_count_ell(
        self,
        points: np.ndarray,
        lngs: np.ndarray,
        lats: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Crossing-count via one padded bucket-row gather per point."""
        width = self.ell_y0.shape[1]
        chunk = max(1, _CHUNK_PAIRS // max(1, width))
        for start in range(0, points.size, chunk):
            sel = points[start:start + chunk]
            rows = self._bucket_of(lats[sel])
            y0 = self.ell_y0[rows]
            y1 = self.ell_y1[rows]
            px = lngs[sel][:, None]
            py = lats[sel][:, None]
            crossing = (y0 <= py) != (y1 <= py)
            t = (py - y0) * self.ell_inv_dy[rows]
            x_at_lat = self.ell_x0[rows] + t * self.ell_dx[rows]
            counts = np.count_nonzero(crossing & (x_at_lat > px), axis=1)
            out[sel] = (counts % 2).astype(bool)

    @staticmethod
    def _crossing_count(
        points: np.ndarray,
        lngs: np.ndarray,
        lats: np.ndarray,
        y0: np.ndarray,
        y1: np.ndarray,
        x0: np.ndarray,
        dx: np.ndarray,
        inv_dy: np.ndarray,
        result: np.ndarray,
    ) -> None:
        """Crossing-count ``points`` against one edge slice (chunked)."""
        y0 = y0[None, :]
        y1 = y1[None, :]
        x0 = x0[None, :]
        dx = dx[None, :]
        inv_dy = inv_dy[None, :]
        chunk = max(1, _CHUNK_PAIRS // max(1, y0.shape[1]))
        for start in range(0, points.size, chunk):
            sel = points[start:start + chunk]
            px = lngs[sel][:, None]
            py = lats[sel][:, None]
            crossing = (y0 <= py) != (y1 <= py)
            t = (py - y0) * inv_dy
            x_at_lat = x0 + t * dx
            counts = np.count_nonzero(crossing & (x_at_lat > px), axis=1)
            result[sel] = (counts % 2).astype(bool)


class _FlatBucketTable:
    """Every polygon's latitude buckets in one ragged (CSR) edge table.

    Refining a candidate pair needs exactly one bucket of one polygon, so
    all buckets are concatenated into global packed edge arrays indexed
    by row: pair ``(polygon id, point)`` maps to row ``row_offset[pid] +
    bucket(point latitude)``, whose edges are the slice
    ``edge_start[row]:edge_start[row + 1]``.  A whole candidate array is
    then decided by one ragged expansion — ``np.repeat`` each pair over
    its bucket's edges, evaluate the crossing rule elementwise, and
    reduce the hits back per pair with ``np.bincount`` — with no
    per-polygon Python loop and no padding, so skewed bucket widths cost
    only their own slots.

    The per-pair MBR filter, bucket arithmetic, and crossing test are
    bit-identical to the per-polygon accelerators, so decisions match the
    group-by path exactly.  Dead ids and edge-free polygons carry an
    all-rejecting MBR (always False, like ``contains_points``).
    """

    def __init__(self, polygons: Sequence[Polygon | None]):
        num = len(polygons)
        self.row_offset = np.zeros(num, dtype=np.int64)
        self.num_buckets = np.ones(num, dtype=np.int64)
        self.lat_origin = np.zeros(num, dtype=np.float64)
        self.inv_bucket_height = np.zeros(num, dtype=np.float64)
        self.mbr_lng_lo = np.full(num, np.inf)
        self.mbr_lng_hi = np.full(num, -np.inf)
        self.mbr_lat_lo = np.full(num, np.inf)
        self.mbr_lat_hi = np.full(num, -np.inf)
        start_parts: list[np.ndarray] = [np.zeros(1, dtype=np.int64)]
        value_parts: list[tuple[np.ndarray, ...]] = []
        next_row = 0
        next_edge = 0
        for pid, polygon in enumerate(polygons):
            if polygon is None:
                continue  # dead id: all-rejecting MBR, never probed
            accelerator = polygon_accelerator(polygon)
            if accelerator.num_edges == 0:
                continue  # no crossing-capable edges: always False
            mbr = accelerator.mbr
            self.mbr_lng_lo[pid] = mbr.lng_lo
            self.mbr_lng_hi[pid] = mbr.lng_hi
            self.mbr_lat_lo[pid] = mbr.lat_lo
            self.mbr_lat_hi[pid] = mbr.lat_hi
            self.row_offset[pid] = next_row
            self.num_buckets[pid] = accelerator.num_buckets
            self.lat_origin[pid] = accelerator.lat_origin
            self.inv_bucket_height[pid] = accelerator.inv_bucket_height
            start_parts.append(next_edge + accelerator.bucket_start[1:])
            value_parts.append(
                (accelerator.ey0, accelerator.ey1, accelerator.ex0,
                 accelerator.edx, accelerator.einv_dy)
            )
            next_row += accelerator.num_buckets
            next_edge += len(accelerator.ey0)
        self.edge_start = np.concatenate(start_parts)
        if value_parts:
            self.y0, self.y1, self.x0, self.dx, self.inv_dy = (
                np.concatenate([values[slot] for values in value_parts])
                for slot in range(5)
            )
        else:
            empty = np.zeros(0, dtype=np.float64)
            self.y0 = self.y1 = self.x0 = self.dx = self.inv_dy = empty

    @property
    def size_bytes(self) -> int:
        arrays = (self.y0, self.y1, self.x0, self.dx, self.inv_dy,
                  self.edge_start, self.row_offset, self.num_buckets,
                  self.lat_origin, self.inv_bucket_height)
        return int(sum(a.nbytes for a in arrays))

    def test(
        self, pids: np.ndarray, px: np.ndarray, py: np.ndarray
    ) -> np.ndarray:
        """PIP decisions for ``(pids[k], (px[k], py[k]))`` pairs at once."""
        out = np.zeros(len(pids), dtype=bool)
        in_mbr = (
            (px >= self.mbr_lng_lo[pids])
            & (px <= self.mbr_lng_hi[pids])
            & (py >= self.mbr_lat_lo[pids])
            & (py <= self.mbr_lat_hi[pids])
        )
        idx = np.nonzero(in_mbr)[0]
        if idx.size == 0:
            return out
        p = pids[idx]
        bx = px[idx]
        by = py[idx]
        raw = np.floor((by - self.lat_origin[p]) * self.inv_bucket_height[p])
        rows = self.row_offset[p] + np.clip(
            raw, 0, self.num_buckets[p] - 1
        ).astype(np.int64)
        starts = self.edge_start[rows]
        lens = self.edge_start[rows + 1] - starts
        cum = np.cumsum(lens)
        lo = 0
        while lo < idx.size:
            # Advance until the expanded slot count reaches the chunk
            # budget (always at least one pair).
            consumed = cum[lo - 1] if lo else 0
            hi = int(np.searchsorted(cum, consumed + _CHUNK_PAIRS)) + 1
            hi = min(hi, idx.size)
            self._test_chunk(
                idx[lo:hi], bx[lo:hi], by[lo:hi],
                starts[lo:hi], lens[lo:hi], out,
            )
            lo = hi
        return out

    def _test_chunk(
        self,
        slots: np.ndarray,
        bx: np.ndarray,
        by: np.ndarray,
        starts: np.ndarray,
        lens: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Ragged crossing count for one chunk of pairs (writes ``out``)."""
        total = int(lens.sum())
        if total == 0:
            return
        offsets = np.cumsum(lens) - lens
        edge_idx = (
            np.arange(total, dtype=np.int64)
            + np.repeat(starts - offsets, lens)
        )
        pair_of = np.repeat(np.arange(len(slots), dtype=np.int64), lens)
        y0 = self.y0[edge_idx]
        y1 = self.y1[edge_idx]
        pyv = by[pair_of]
        pxv = bx[pair_of]
        crossing = (y0 <= pyv) != (y1 <= pyv)
        t = (pyv - y0) * self.inv_dy[edge_idx]
        x_at_lat = self.x0[edge_idx] + t * self.dx[edge_idx]
        hits = crossing & (x_at_lat > pxv)
        counts = np.bincount(pair_of[hits], minlength=len(slots))
        out[slots] = (counts % 2).astype(bool)


def polygon_accelerator(polygon: Polygon) -> PolygonAccelerator:
    """The polygon's accelerator, memoized on the polygon object itself.

    A benign build race between threads is tolerated (both build the same
    immutable arrays; one wins), mirroring ``Polygon.all_edges``.
    """
    accelerator = polygon._refine_cache
    if accelerator is None:
        accelerator = PolygonAccelerator(polygon)
        polygon._refine_cache = accelerator
    return accelerator


class RefinementEngine:
    """Group-by refinement over candidate pairs for one polygon sequence.

    One engine belongs to one index snapshot (the builder attaches it to
    every :class:`~repro.core.builder.ProbeView`), but the per-polygon
    accelerators are shared across snapshots through the polygons
    themselves, so delta overlays, compactions, and serialize round trips
    never redo the packing for a surviving polygon.
    """

    def __init__(
        self, polygons: Sequence[Polygon | None], *, build_table: bool = True
    ):
        self._polygons = polygons
        #: Ephemeral engines (built per call, e.g. by ``refine_candidates``
        #: when no snapshot engine is passed) set ``build_table=False``:
        #: they could never amortize the flat-table build, so they stay on
        #: the group-by path.  Snapshot engines (``ProbeView.refiner``)
        #: build the table once and reuse it for their lifetime.
        self._build_table = build_table
        self._table: _FlatBucketTable | None = None
        self._table_lock = threading.Lock()

    @property
    def num_polygons(self) -> int:
        return len(self._polygons)

    def accelerator(self, polygon_id: int) -> PolygonAccelerator:
        polygon = self._polygons[polygon_id]
        if polygon is None:
            raise KeyError(f"polygon id {polygon_id} is not live")
        return polygon_accelerator(polygon)

    def warm(self) -> int:
        """Eagerly build every accelerator and the flat table; returns bytes."""
        total = 0
        for polygon in self._polygons:
            if polygon is not None:
                total += polygon_accelerator(polygon).size_bytes
        if self._build_table:
            total += self._flat_table().size_bytes
        return total

    def _flat_table(self) -> _FlatBucketTable:
        """The engine's flat bucket table (built once, under a lock)."""
        table = self._table
        if table is None:
            with self._table_lock:
                table = self._table
                if table is None:
                    table = _FlatBucketTable(self._polygons)
                    self._table = table
        return table

    def contains(
        self, polygon_id: int, lngs: np.ndarray, lats: np.ndarray
    ) -> np.ndarray:
        return self.accelerator(polygon_id).contains(lngs, lats)

    def refine(
        self,
        point_idx: np.ndarray,
        pids: np.ndarray,
        is_true: np.ndarray,
        lngs: np.ndarray,
        lats: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, int, int]:
        """PIP-test candidate pairs; keep true hits and accepted candidates.

        Same contract (and bit-identical output arrays) as the historical
        per-polygon-mask loop.  Large refinements go through the flat
        bucket table: every ``(polygon, point)`` pair resolves to one
        bucket row, and the whole candidate array is decided by a single
        ragged crossing kernel.  Small refinements, which would not
        amortize the table build, take the group-by path instead: one
        stable argsort over the candidate polygon ids turns every
        polygon's candidates into one contiguous slice, each tested
        through that polygon's accelerator.  Returns ``(kept point
        indices, kept polygon ids, number of PIP tests, number of
        distinct refined points)``.
        """
        lngs = np.asarray(lngs, dtype=np.float64)
        lats = np.asarray(lats, dtype=np.float64)
        cand = ~is_true
        cand_points = point_idx[cand]
        cand_pids = pids[cand]
        num_candidates = len(cand_points)
        if num_candidates:
            accepted = self._accept_candidates(
                cand_pids, lngs[cand_points], lats[cand_points]
            )
        else:
            accepted = np.zeros(0, dtype=bool)
        keep_points = np.concatenate([point_idx[is_true], cand_points[accepted]])
        keep_pids = np.concatenate([pids[is_true], cand_pids[accepted]])
        if num_candidates:
            # Distinct refined points via a flag scatter: O(C + max index),
            # noticeably cheaper than sorting/hashing the candidate array.
            flags = np.zeros(int(cand_points.max()) + 1, dtype=bool)
            flags[cand_points] = True
            num_refined = int(np.count_nonzero(flags))
        else:
            num_refined = 0
        return keep_points, keep_pids, int(num_candidates), num_refined

    def _accept_candidates(
        self,
        cand_pids: np.ndarray,
        cand_lngs: np.ndarray,
        cand_lats: np.ndarray,
    ) -> np.ndarray:
        """PIP-accept one candidate batch; returns the boolean accept mask.

        The table-vs-group dispatch lives here so subclasses (the sharded
        mini-join refiner) can partition a batch into classes, run each
        class through this same decision procedure, and scatter the masks
        back — each pair's verdict depends only on the pair itself, so
        any partition of the batch yields a bit-identical overall mask.
        """
        num_candidates = len(cand_pids)
        accepted = np.zeros(num_candidates, dtype=bool)
        if num_candidates == 0:
            return accepted
        if self._build_table and (
            num_candidates >= _TABLE_MIN_PAIRS or self._table is not None
        ):
            return self._flat_table().test(cand_pids, cand_lngs, cand_lats)
        self._refine_groups(
            np.arange(num_candidates), cand_pids, cand_lngs, cand_lats,
            accepted,
        )
        return accepted

    def _refine_groups(
        self,
        loop_idx: np.ndarray,
        cand_pids: np.ndarray,
        cand_lngs: np.ndarray,
        cand_lats: np.ndarray,
        accepted: np.ndarray,
    ) -> None:
        """Group-by path over a subset of the candidate pairs (in place)."""
        order = loop_idx[np.argsort(cand_pids[loop_idx], kind="stable")]
        sorted_pids = cand_pids[order]
        # One gather up front: each polygon's group then reads (and
        # writes) contiguous slices, keeping the per-group cost at a
        # handful of numpy calls instead of two fancy gathers each.
        sorted_lngs = cand_lngs[order]
        sorted_lats = cand_lats[order]
        distinct, group_starts = np.unique(sorted_pids, return_index=True)
        group_ends = np.append(group_starts[1:], len(sorted_pids))
        accepted_sorted = np.zeros(order.size, dtype=bool)
        for pid, lo, hi in zip(distinct.tolist(), group_starts, group_ends):
            self.accelerator(int(pid)).contains_into(
                sorted_lngs[lo:hi],
                sorted_lats[lo:hi],
                accepted_sorted[lo:hi],
            )
        accepted[order] = accepted_sorted
