"""Point-to-polygon distance (planar, city-scale).

Used to *verify* the approximate join's precision guarantee: any false
positive must lie within the precision bound of its polygon.  Distances are
measured in meters on the local tangent plane (longitude scaled by
``cos(lat)``), which is accurate to well below 0.1 % at city extents.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cells.metrics import EARTH_RADIUS_METERS
from repro.geo.pip import contains_point
from repro.geo.polygon import Polygon

METERS_PER_DEGREE = EARTH_RADIUS_METERS * math.pi / 180.0


def boundary_distance_meters(polygon: Polygon, lng: float, lat: float) -> float:
    """Distance from a point to the polygon's boundary (0 if on it)."""
    x0, y0, x1, y1 = polygon.all_edges()
    scale_x = math.cos(math.radians(lat)) * METERS_PER_DEGREE
    scale_y = METERS_PER_DEGREE
    ax = (x0 - lng) * scale_x
    ay = (y0 - lat) * scale_y
    bx = (x1 - lng) * scale_x
    by = (y1 - lat) * scale_y
    dx = bx - ax
    dy = by - ay
    length_sq = dx * dx + dy * dy
    safe = np.where(length_sq > 0.0, length_sq, 1.0)
    t = np.clip(np.where(length_sq > 0.0, -(ax * dx + ay * dy) / safe, 0.0), 0.0, 1.0)
    px = ax + t * dx
    py = ay + t * dy
    return float(np.sqrt(px * px + py * py).min())


def polygon_distance_meters(polygon: Polygon, lng: float, lat: float) -> float:
    """Distance from a point to the polygon *region* (0 when inside)."""
    if contains_point(polygon, lng, lat):
        return 0.0
    return boundary_distance_meters(polygon, lng, lat)
