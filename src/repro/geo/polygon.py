"""Polygons with holes, backed by numpy vertex arrays.

A :class:`Ring` is a closed sequence of vertices (the closing edge back to
the first vertex is implicit).  A :class:`Polygon` is one outer ring plus
zero or more hole rings, with even-odd interior semantics: a point is inside
the polygon if a ray from it crosses the union of all ring edges an odd
number of times.  This matches the semantics of the ray-tracing PIP test the
paper uses in its refinement phase (S2's ``S2Polygon::Contains``), and of
PostGIS ``ST_Covers`` up to boundary cases.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.geo.rect import Rect


class Ring:
    """A closed ring of ``(lng, lat)`` vertices (implicitly closed)."""

    __slots__ = ("lngs", "lats", "_mbr")

    def __init__(self, vertices: Iterable[tuple[float, float]]):
        pts = list(vertices)
        if len(pts) >= 2 and pts[0] == pts[-1]:
            # Tolerate explicitly closed input rings.
            pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError(f"a ring needs at least 3 distinct vertices, got {len(pts)}")
        self.lngs = np.asarray([p[0] for p in pts], dtype=np.float64)
        self.lats = np.asarray([p[1] for p in pts], dtype=np.float64)
        self._mbr: Rect | None = None

    @property
    def num_vertices(self) -> int:
        return len(self.lngs)

    @property
    def mbr(self) -> Rect:
        if self._mbr is None:
            self._mbr = Rect(
                float(self.lngs.min()),
                float(self.lngs.max()),
                float(self.lats.min()),
                float(self.lats.max()),
            )
        return self._mbr

    def vertices(self) -> list[tuple[float, float]]:
        return list(zip(self.lngs.tolist(), self.lats.tolist()))

    def edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Edge endpoint arrays ``(x0, y0, x1, y1)``, one entry per edge."""
        x0 = self.lngs
        y0 = self.lats
        x1 = np.roll(self.lngs, -1)
        y1 = np.roll(self.lats, -1)
        return x0, y0, x1, y1

    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise rings)."""
        x = self.lngs
        y = self.lats
        xr = np.roll(x, -1)
        yr = np.roll(y, -1)
        return float(np.sum(x * yr - xr * y) / 2.0)

    def __repr__(self) -> str:
        return f"Ring({self.num_vertices} vertices)"


class Polygon:
    """One outer ring plus optional hole rings, with even-odd semantics."""

    __slots__ = ("outer", "holes", "_mbr", "_edge_cache", "_edgeset_cache",
                 "_refine_cache", "_train_cache")

    def __init__(self, outer: Ring | Sequence[tuple[float, float]],
                 holes: Sequence[Ring | Sequence[tuple[float, float]]] = ()):
        self.outer = outer if isinstance(outer, Ring) else Ring(outer)
        self.holes = [h if isinstance(h, Ring) else Ring(h) for h in holes]
        self._mbr: Rect | None = None
        self._edge_cache: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._edgeset_cache = None  # lazily built by repro.geo.relation
        self._refine_cache = None  # lazily built by repro.geo.refine
        self._train_cache = None  # lazily built by repro.core.training

    @property
    def rings(self) -> list[Ring]:
        return [self.outer, *self.holes]

    @property
    def num_vertices(self) -> int:
        return sum(ring.num_vertices for ring in self.rings)

    @property
    def num_edges(self) -> int:
        return self.num_vertices

    @property
    def mbr(self) -> Rect:
        if self._mbr is None:
            self._mbr = self.outer.mbr
        return self._mbr

    def all_edges(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated edge arrays over all rings (cached)."""
        if self._edge_cache is None:
            parts = [ring.edges() for ring in self.rings]
            self._edge_cache = tuple(
                np.concatenate([p[i] for p in parts]) for i in range(4)
            )  # type: ignore[assignment]
        return self._edge_cache  # type: ignore[return-value]

    def area(self) -> float:
        """Unsigned area of outer ring minus hole areas (planar units)."""
        area = abs(self.outer.signed_area())
        for hole in self.holes:
            area -= abs(hole.signed_area())
        return area

    def __getstate__(self) -> tuple[Ring, list[Ring]]:
        """Pickle only the geometry, never the lazy caches.

        The derived caches (edge arrays, edge sets, refinement
        accelerators, training classifiers) are all recomputable and can
        dwarf the vertex data; dropping them keeps spawn-shipped shard
        payloads lean and avoids pickling accelerator internals.
        """
        return self.outer, self.holes

    def __setstate__(self, state: tuple[Ring, list[Ring]]) -> None:
        outer, holes = state
        self.__init__(outer, holes)

    def __repr__(self) -> str:
        return f"Polygon({self.outer.num_vertices} outer vertices, {len(self.holes)} holes)"


def regular_polygon(center: tuple[float, float], radius: float, num_vertices: int) -> Polygon:
    """A regular ``num_vertices``-gon around ``center`` — handy for tests."""
    cx, cy = center
    angles = np.linspace(0.0, 2.0 * np.pi, num_vertices, endpoint=False)
    pts = [(cx + radius * float(np.cos(a)), cy + radius * float(np.sin(a))) for a in angles]
    return Polygon(pts)
