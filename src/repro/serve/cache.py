"""Hot-cell caching for the serving hot path.

Probing the cell store is the dominant cost of a join, and real request
streams are heavily skewed: the Twitter-style workloads of the paper's
Figure 9 concentrate most points in a handful of city hotspots, so the
same leaf cells are probed over and over.  :class:`HotCellCache` is a
thread-safe LRU keyed on leaf cell id that remembers the tagged entry the
store returned for that cell; :class:`CachedCellStore` wraps any cell
store behind the cache while still satisfying the ``probe`` protocol, so
the existing join drivers (``approximate_join``/``accurate_join``) run
unchanged — a cached probe is bit-identical to a direct one because the
entry for a cell is immutable once the index is built.

Hit/miss accounting is weighted by *points*, not by distinct cells: a
micro-batch whose 10,000 points all fall in one cached cell records
10,000 hits, which is exactly the number of trie descents the cache
short-circuited.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.cells.cellid import MAX_LEVEL


@dataclass(frozen=True)
class CacheStats:
    """Point-weighted hit/miss counters of one :class:`HotCellCache`."""

    capacity: int
    size: int
    hits: int
    misses: int
    evictions: int

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.hits / self.requests


class HotCellCache:
    """Thread-safe LRU of ``leaf cell id -> tagged store entry``.

    ``capacity`` counts distinct cells; ``capacity=0`` disables caching
    (every probe goes to the store and no statistics are recorded).
    """

    def __init__(self, capacity: int = 4096):
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[int, int] = OrderedDict()  #: guarded_by(_lock)
        self._lock = threading.Lock()
        self._hits = 0  #: guarded_by(_lock)
        self._misses = 0  #: guarded_by(_lock)
        self._evictions = 0  #: guarded_by(_lock)

    def get(self, cell_id: int, weight: int = 1) -> int | None:
        """Cached entry for a cell, or ``None``; counts ``weight`` probes."""
        with self._lock:
            entry = self._entries.get(cell_id)
            if entry is None:
                self._misses += weight
                return None
            self._entries.move_to_end(cell_id)
            self._hits += weight
            return entry

    def put(self, cell_id: int, entry: int) -> None:
        if self.capacity == 0:
            # Caching disabled: inserting would only evict immediately,
            # inflating the eviction counter for entries never servable.
            return
        with self._lock:
            self._entries[cell_id] = entry
            self._entries.move_to_end(cell_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_many(
        self, cell_ids: list[int], weights: np.ndarray
    ) -> tuple[list[int | None], list[int]]:
        """Batch :meth:`get` under ONE lock acquisition (the hot path).

        Returns the per-id entries (``None`` on miss) and the miss slots.
        """
        misses: list[int] = []
        out: list[int | None] = [None] * len(cell_ids)
        with self._lock:
            entries = self._entries
            for slot, cell_id in enumerate(cell_ids):
                entry = entries.get(cell_id)
                if entry is None:
                    misses.append(slot)
                    self._misses += int(weights[slot])
                else:
                    entries.move_to_end(cell_id)
                    self._hits += int(weights[slot])
                    out[slot] = entry
        return out, misses

    def put_many(self, items: list[tuple[int, int]]) -> None:
        """Batch :meth:`put` under one lock acquisition."""
        if self.capacity == 0:
            return
        with self._lock:
            entries = self._entries
            for cell_id, entry in items:
                entries[cell_id] = entry
                entries.move_to_end(cell_id)
            while len(entries) > self.capacity:
                entries.popitem(last=False)
                self._evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, cell_id: int) -> bool:
        with self._lock:
            return cell_id in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = self._misses = self._evictions = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                capacity=self.capacity,
                size=len(self._entries),
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


def key_shift_for_level(max_cell_level: int) -> int:
    """Right-shift turning a leaf cell id into a sound cache key.

    Full leaf ids (level 30) are nearly unique for continuous coordinates,
    so a cache keyed on them never hits.  But every store resolves a probe
    using only the indexed cells, and no indexed cell is deeper than the
    super covering's maximum level ``D`` — so two leaf ids sharing their
    level-``D`` ancestor are guaranteed the same probe result, and the
    ancestor's position bits make a sound, reusable cache key.

    A leaf id is ``face(3) | 60 position bits | marker(1)``: below the
    level-``D`` quadrant bits sit ``2 * (30 - D)`` finer position bits
    plus the marker bit, hence the ``+ 1``.
    """
    if not 0 <= max_cell_level <= MAX_LEVEL:
        raise ValueError(f"invalid cell level: {max_cell_level}")
    return 2 * (MAX_LEVEL - max_cell_level) + 1


class CachedCellStore:
    """A ``CellStore`` adapter that serves probes through a hot-cell cache.

    Deduplicates the batch to its distinct cache keys (leaf ids truncated
    by ``key_shift``, see :func:`key_shift_for_level`), answers cached
    keys from the LRU, probes the underlying store once per missing key,
    and scatters the entries back to every point — so downstream decoding
    and refinement see exactly what a direct ``store.probe`` would return.

    ``recorder`` is an optional telemetry sink (the adaptation loop's
    :class:`~repro.core.adaptive.TrafficSink`): after each batch it
    receives the unique keys, their point weights, and the resolved
    entries — piggybacking on the dedup work the cache already did, so
    hot-path telemetry costs no extra passes over the points.

    ``tracer`` is an optional :class:`~repro.obs.trace.Tracer`; LRU hits
    and misses of each batch show up as a ``cache_lookup`` child span of
    the active dispatch.
    """

    def __init__(self, store, cache: HotCellCache, key_shift: int = 0,
                 recorder=None, tracer=None):
        if not 0 <= key_shift < 64:
            raise ValueError(f"key_shift must be in [0, 64), got {key_shift}")
        self.store = store
        self.cache = cache
        self.key_shift = key_shift
        self.recorder = recorder
        self.tracer = tracer

    def probe(self, query_ids: np.ndarray) -> np.ndarray:
        query_ids = np.asarray(query_ids, dtype=np.uint64)
        if query_ids.size == 0:
            return self.store.probe(query_ids)
        if self.cache.capacity == 0 and self.recorder is None:
            return self.store.probe(query_ids)
        keys = query_ids >> np.uint64(self.key_shift)
        unique_keys, first_index, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        weights = np.bincount(inverse, minlength=len(unique_keys))
        if self.cache.capacity == 0:
            # Caching disabled but telemetry on: probe directly and record
            # one representative entry per key.
            full = self.store.probe(query_ids)
            self.recorder.record(unique_keys, weights, full[first_index])
            return full
        if self.tracer is not None:
            with self.tracer.span("cache_lookup") as span:
                cached, miss_slots = self.cache.get_many(
                    unique_keys.tolist(), weights
                )
                span.set(keys=len(unique_keys), misses=len(miss_slots))
        else:
            cached, miss_slots = self.cache.get_many(
                unique_keys.tolist(), weights
            )
        entries = np.asarray(
            [entry if entry is not None else 0 for entry in cached],
            dtype=np.uint64,
        )
        if miss_slots:
            # One representative full leaf id per missing key; every id
            # sharing the key resolves to the same entry by construction.
            missed = self.store.probe(query_ids[first_index[miss_slots]])
            entries[miss_slots] = missed
            self.cache.put_many(
                [
                    (int(unique_keys[slot]), entry)
                    for slot, entry in zip(miss_slots, missed.tolist())
                ]
            )
        if self.recorder is not None:
            self.recorder.record(unique_keys, weights, entries)
        return entries[inverse]

    # Pass introspection through so `describe()`/`size_bytes` keep working.
    def __getattr__(self, name: str):
        # Only reached when normal lookup fails.  `copy.copy`/`pickle`
        # probe dunders (and then instance attributes) on a bare instance
        # whose __dict__ is not populated yet; delegating those through
        # ``self.store`` would recurse forever, so anything that should
        # live on the wrapper itself raises AttributeError instead.
        if name.startswith("__") or name in (
            "store", "cache", "key_shift", "recorder", "tracer",
        ):
            raise AttributeError(
                f"{type(self).__name__!r} object has no attribute {name!r}"
            )
        return getattr(self.store, name)
