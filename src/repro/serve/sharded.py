"""Share-nothing sharded serving: saturate cores past the GIL.

The probe/refine join is embarrassingly parallel, but a single-process
:class:`~repro.serve.service.JoinService` is GIL-bound on the
Python-level portions of the probe-heavy paths.  This module partitions
each layer *by space* and serves every partition from its own process —
the partition-based scheme of Tsitsigkos et al. (*Parallel In-Memory
Evaluation of Spatial Joins*) applied to the paper's cell-id domain:

* :class:`ShardPlan` cuts the Hilbert curve into ``num_shards``
  contiguous leaf-id ranges.  The super covering's cells are disjoint,
  so every cell — and therefore every point probing it — belongs to
  exactly one shard.  Every polygon gets a *home shard*: the shard of
  its median covering entry in curve order (cut-independent, so it
  exists before any cuts do).  Each shard's (cell, ref) entries then classify into
  **owned** (the polygon is homed here) vs **borrowed** (its covering
  straddles a cut from another shard) classes — the two-layer
  space-oriented partitioning of Tsitsigkos et al. (*Parallel In-Memory
  Evaluation of Spatial Joins*) applied to the paper's cell-id domain.
  Cut points balance on owned work only (``balance="owned"``), since
  borrowed entries would otherwise distort the weights toward
  boundary-heavy shards; the plan surfaces ``replication_factor`` and
  per-class counts.
* With the default ``plan="two-layer"`` a layer's snapshot publishes in
  TWO kinds of shared-memory segment::

      geometry plane (one segment per layer, shared machine-wide)
        ring geometry | packed refinement edge buckets | polygon table
              ^ attach read-only   ^ attach     ...      ^ attach
      coverage planes (one private segment per shard)
        shard 0: covering subset | ACT store | lut | home_shards
        shard 1: covering subset | ACT store | lut | home_shards
        ...

  A straddling polygon contributes covering cells to several coverage
  planes, but its geometry and accelerators exist exactly once —
  measured replication factor 1.0 by construction.  Worker-side, each
  shard composes the two planes via
  :meth:`~repro.core.flat.FlatSnapshot.from_planes` and refines through
  a class-aware **mini-join** refiner: candidate pairs split into the
  owned and borrowed classes, each class refines as its own mini-join,
  and the accept masks scatter back in original order — bit-identical
  to the unsplit engine, so merged results need no front-side dedup.
  ``plan="replicate"`` keeps the pre-two-layer behavior (each shard's
  full sub-index packed into its own segment, straddlers copied per
  shard) as the comparison baseline.
* A **shard worker** is a spawned process hosting one ordinary
  :class:`JoinService` over its partition sub-indexes.  With
  ``snapshot="flat"`` workers *attach* published segments (a buffer
  map, no store build); ``snapshot="rebuild"`` ships the covering cells
  instead and the worker rebuilds via
  :func:`~repro.core.builder.build_partition_index` (the coverer never
  re-runs either way) — kept for comparison benchmarks.  Batch
  coordinates travel through shared-memory buffers too, never the
  pickle stream; only the control messages and the (small) partial
  ``JoinResult`` statistics cross the pipe.
* :class:`ShardedJoinService` is the front: it computes leaf cell ids
  once, scatters each batch to the owning shards, gathers the partial
  results, and merges them with the same wall-time apportioning as the
  morsel merge.  It exposes the same ``join`` / ``join_layers`` /
  ``lookup`` / ``submit`` / ``stats`` / ``swap_layer`` surface as
  ``JoinService``; swaps and workload-adaptive retraining fan out per
  shard, and the merged :class:`~repro.serve.stats.ServiceStats` carries
  per-shard detail in ``stats.shards``.

``backend="inline"`` hosts the per-shard services in the calling process
instead (no processes, no shared memory) — same partitioning, same
scatter/gather, same merge — which is what the shard-boundary
equivalence tests exercise exhaustively and what debugging uses.

The front serializes scatter/gather dispatches with one lock (a worker
pipe is not safe for interleaved use anyway); parallelism comes from
splitting each batch across the shard processes, not from overlapping
front-side dispatches.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import traceback
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from collections.abc import Mapping, Sequence

import numpy as np

from repro.cells.vectorized import (
    cell_ids_from_lat_lng_arrays,
    home_rows_from_entries,
    owned_entry_mask,
    range_bounds_from_cell_ids,
)
from repro.core.adaptive import AdaptationPolicy
from repro.core.builder import (
    PolygonIndex,
    build_partition_index,
    build_partition_store,
    ensure_version_floor,
)
from repro.core.flat import (
    FlatSnapshot,
    attach_index,
    pack_coverage_plane,
    pack_geometry_plane,
    pack_index,
)
from repro.core.joins import JoinResult
from repro.geo.polygon import Polygon
from repro.geo.refine import RefinementEngine
from repro.obs import DispatchMeters, Observability, ObsConfig
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.batching import LookupRequest, MicroBatcher
from repro.serve.cache import CacheStats
from repro.serve.router import LayerRouter
from repro.serve.service import DEFAULT_LAYER, JoinService
from repro.serve.stats import (
    LatencyRecorder,
    LayerStatus,
    ServiceStats,
    ShardStatus,
)
from repro.util.timing import Timer


class ShardWorkerError(RuntimeError):
    """A shard worker failed; carries the worker-side traceback text."""

    def __init__(self, shard: int, detail: str):
        super().__init__(f"shard {shard} failed:\n{detail}")
        self.shard = shard
        self.detail = detail


# ----------------------------------------------------------------------
# The shard plan: Hilbert cell-id range partitioning
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ShardPlan:
    """A partition of one layer's covering into leaf-id ranges.

    ``boundaries`` holds ``num_shards - 1`` leaf-id cut points; shard
    ``s`` owns the half-open leaf range ``[boundaries[s-1],
    boundaries[s])`` (unbounded at the ends).  Cut points are the
    ``range_min`` of the cell they start, so every covering cell — whose
    leaf range never straddles a cut by disjointness — lands wholly in
    one shard.  Duplicate cut points are allowed (a pathologically hot
    cell can exceed a whole shard's weight share); the shards they
    collapse simply stay empty, keeping shard ids stable in
    ``[0, num_shards)``.

    Every *referenced* polygon has a **home shard** — the shard holding
    its median (cell, ref) entry in curve order, a property of the
    covering alone and independent of where the cuts land (the median
    is robust to coverings that straddle a curve discontinuity, where a
    min-id anchor would collapse every home into one sliver).  A shard's polygons then split
    into ``owned`` (homed here) and ``borrowed`` (covering cells here,
    homed elsewhere — the straddlers), and the same classification
    applies to the (cell, ref) entries (``owned_weights`` vs
    ``borrowed_weights``).  Cuts balance on ``owned_work`` by default:
    each polygon's TOTAL entry count attributed to its home cell, so a
    boundary-heavy covering does not double-count straddlers into every
    shard they touch when choosing where to cut.
    """

    num_shards: int
    boundaries: np.ndarray  # (num_shards - 1,) uint64 leaf-id cut points
    owned: tuple[tuple[int, ...], ...]  # polygon ids homed per shard
    borrowed: tuple[tuple[int, ...], ...]  # straddlers referenced per shard
    cells: tuple[dict[int, tuple], ...]  # covering subset per shard
    cell_weights: tuple[int, ...]  # (cell, ref) entries per shard
    owned_weights: tuple[int, ...]  # owned-class entries per shard
    borrowed_weights: tuple[int, ...]  # borrowed-class entries per shard
    owned_work: tuple[int, ...]  # Σ entry count of polygons homed per shard
    home_shards: np.ndarray  # (num_polygons,) int64 home shard, -1 = unreferenced
    balance: str = "owned"

    @property
    def members(self) -> tuple[tuple[int, ...], ...]:
        """Polygon ids referenced per shard (owned ∪ borrowed, sorted)."""
        return tuple(
            tuple(sorted(self.owned[shard] + self.borrowed[shard]))
            for shard in range(self.num_shards)
        )

    @property
    def replication_factor(self) -> float:
        """Per-shard polygon slots per distinct referenced polygon.

        Exactly 1.0 when no covering straddles a cut; the classic
        replicate-the-straddlers publication materializes this many
        polygon-table copies, while the two-layer publication stores
        geometry once regardless (its measured factor is 1.0 by
        construction).
        """
        referenced = int(np.count_nonzero(self.home_shards >= 0))
        if referenced == 0:
            return 1.0
        slots = sum(
            len(self.owned[shard]) + len(self.borrowed[shard])
            for shard in range(self.num_shards)
        )
        return slots / referenced

    @classmethod
    def from_index(
        cls,
        index: PolygonIndex,
        num_shards: int,
        *,
        balance: str = "owned",
    ) -> "ShardPlan":
        """Plan ``num_shards`` partitions of a built index's covering.

        ``balance="owned"`` (default) weights each cell by the owned
        work homed there — every polygon's total (cell, ref) entry count
        attributed to its home cell — and cuts the
        id-sorted cell sequence at the weighted quantiles, so straddlers
        count once toward exactly one shard's share.  ``"entries"``
        keeps the historical per-cell reference-count weighting
        (straddlers weigh into every shard they touch), retained for the
        balance-regression comparison.
        """
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if balance not in ("owned", "entries"):
            raise ValueError(f"unknown balance mode {balance!r}")
        num_polygons = len(index.polygons)
        covering = index.super_covering
        raw = covering.raw_items()
        ids, counts, entry_pids = covering.entry_arrays()
        num_cells = len(ids)
        # One row index per (cell, ref) entry, in id-sorted cell order.
        entry_rows = np.repeat(np.arange(num_cells, dtype=np.int64), counts)
        # Home cell (row) of every polygon: its MINIMUM covering cell id
        # — defined before any cuts exist, so the owned-work weights the
        # cuts balance on cannot depend on the cuts themselves.
        home_rows = home_rows_from_entries(entry_rows, entry_pids, num_polygons)
        referenced = home_rows >= 0
        poly_entries = np.bincount(entry_pids, minlength=num_polygons)
        owned_work_per_cell = np.zeros(num_cells, dtype=np.int64)
        np.add.at(
            owned_work_per_cell, home_rows[referenced], poly_entries[referenced]
        )
        weights = owned_work_per_cell if balance == "owned" else counts
        lo, hi = range_bounds_from_cell_ids(ids)
        if num_shards == 1 or num_cells == 0:
            boundaries = np.zeros(0, dtype=np.uint64)
        else:
            cumulative = np.cumsum(weights)
            total = int(cumulative[-1])
            cuts = []
            for k in range(1, num_shards):
                target = total * k / num_shards
                idx = int(np.searchsorted(cumulative, target, side="left"))
                idx = min(idx, num_cells - 1)
                cuts.append(int(lo[idx]))
            boundaries = np.asarray(sorted(cuts), dtype=np.uint64)
        if boundaries.size:
            shard_of_cell = np.searchsorted(boundaries, lo, side="right")
            # Disjointness guarantees a cell's whole leaf range falls on
            # one side of every cut (cuts are range_min values of cells).
            hi_side = np.searchsorted(boundaries, hi, side="right")
            if not np.array_equal(hi_side, shard_of_cell):
                raise AssertionError(
                    "shard cut splits a covering cell's leaf range; "
                    "the covering is not disjoint"
                )
        else:
            shard_of_cell = np.zeros(num_cells, dtype=np.int64)
        home_shards = np.full(num_polygons, -1, dtype=np.int64)
        home_shards[referenced] = shard_of_cell[home_rows[referenced]]
        entry_shards = shard_of_cell[entry_rows]
        owned_mask = owned_entry_mask(entry_shards, entry_pids, home_shards)
        cell_weights = np.bincount(entry_shards, minlength=num_shards)
        owned_weights = np.bincount(
            entry_shards[owned_mask], minlength=num_shards
        )
        owned_work = np.zeros(num_shards, dtype=np.int64)
        np.add.at(
            owned_work, home_shards[referenced], poly_entries[referenced]
        )
        owned_ids = tuple(
            tuple(np.flatnonzero(home_shards == shard).tolist())
            for shard in range(num_shards)
        )
        # Distinct borrowed (shard, polygon) pairs via one composite-key
        # unique — a straddler can enter a shard through many cells.
        borrowed_lists: list[list[int]] = [[] for _ in range(num_shards)]
        b_shards = entry_shards[~owned_mask]
        b_pids = entry_pids[~owned_mask]
        if len(b_pids):
            span = np.int64(num_polygons)
            unique_keys = np.unique(b_shards * span + b_pids)
            for shard, pid in zip(
                (unique_keys // span).tolist(), (unique_keys % span).tolist()
            ):
                borrowed_lists[shard].append(pid)
        cells: list[dict[int, tuple]] = [dict() for _ in range(num_shards)]
        for cell_id, shard in zip(ids.tolist(), shard_of_cell.tolist()):
            cells[shard][cell_id] = raw[cell_id]
        return cls(
            num_shards=num_shards,
            boundaries=boundaries,
            owned=owned_ids,
            borrowed=tuple(tuple(pids) for pids in borrowed_lists),
            cells=tuple(cells),
            cell_weights=tuple(int(w) for w in cell_weights),
            owned_weights=tuple(int(w) for w in owned_weights),
            borrowed_weights=tuple(
                int(total - owned)
                for total, owned in zip(cell_weights, owned_weights)
            ),
            owned_work=tuple(int(w) for w in owned_work),
            home_shards=home_shards,
            balance=balance,
        )

    def shard_for(self, leaf_ids: np.ndarray) -> np.ndarray:
        """The owning shard of each leaf cell id."""
        leaf_ids = np.asarray(leaf_ids, dtype=np.uint64)
        if self.boundaries.size == 0:
            return np.zeros(len(leaf_ids), dtype=np.int64)
        return np.searchsorted(self.boundaries, leaf_ids, side="right")


# ----------------------------------------------------------------------
# Worker-side: payloads, service construction, the process main loop
# ----------------------------------------------------------------------


@dataclass
class _ShardPart:  #: spawn_payload
    """One layer's partition, as shipped to (or built for) one shard."""

    num_polygons: int  # global polygon-table length (id space)
    members: dict[int, Polygon]  # polygons replicated into this shard
    cells: dict[int, tuple]  # this shard's covering subset
    precision_meters: float | None
    fanout_bits: int
    version: int  # the parent snapshot's version


@dataclass(frozen=True)
class _FlatShardPart:  #: spawn_payload
    """One layer's partition as a published flat snapshot (attach-only).

    The front packed the partition sub-index into a shared-memory
    segment; the worker maps the segment and serves the buffers in
    place.  The part itself is a few bytes of pickle — the index never
    crosses the pipe.
    """

    shm_name: str  # segment holding the FlatSnapshot blob
    nbytes: int  # blob payload size (segment may be page-rounded)
    version: int  # the parent snapshot's version


@dataclass(frozen=True)
class _TwoLayerShardPart:  #: spawn_payload
    """One layer's partition as a geometry + coverage plane pair.

    The geometry segment is SHARED: every shard of the layer names the
    same segment and maps the same pages (ring geometry, refinement
    buckets, polygon table — published exactly once).  The coverage
    segment is this shard's own: its covering subset, ACT store, lookup
    table, and the plan's home-shard table.  The worker composes the two
    planes back into one serveable snapshot via
    :meth:`~repro.core.flat.FlatSnapshot.from_planes` and swaps in the
    class-aware mini-join refiner.
    """

    shard: int
    geometry_shm: str  # the layer's single shared geometry-plane segment
    geometry_nbytes: int
    coverage_shm: str  # this shard's private coverage-plane segment
    coverage_nbytes: int
    version: int  # the parent snapshot's version


_AnyShardPart = _ShardPart | _FlatShardPart | _TwoLayerShardPart


@dataclass
class _WorkerPayload:  #: spawn_payload
    """Everything one shard worker needs to build its JoinService."""

    shard: int
    parts: dict[str, _AnyShardPart]  # layer name -> partition
    cache_cells: int
    adaptation: AdaptationPolicy | None
    obs: ObsConfig | None = None  # worker-side observability settings


def _part_for(plan: ShardPlan, shard: int, index: PolygonIndex) -> _ShardPart:
    polygons = index.polygons
    return _ShardPart(
        num_polygons=len(polygons),
        members={pid: polygons[pid] for pid in plan.members[shard]},
        cells=plan.cells[shard],
        precision_meters=index.precision_meters,
        fanout_bits=int(getattr(index.store, "fanout_bits", 8)),
        version=index.version,
    )


def _flat_part_for(
    plan: ShardPlan, shard: int, index: PolygonIndex
) -> tuple[_FlatShardPart, SharedMemory]:
    """Build one shard's partition front-side and publish it as a segment.

    Returns the (tiny, picklable) part plus the segment handle — the
    caller owns the segment's lifetime and must unlink it when this
    generation is retired.
    """
    sub = _index_from_part(_part_for(plan, shard, index), fresh_version=False)
    snapshot = pack_index(sub)
    segment = snapshot.to_shared_memory()
    return (
        _FlatShardPart(
            shm_name=segment.name,
            nbytes=snapshot.nbytes,
            version=int(index.version),
        ),
        segment,
    )


def _index_from_part(
    part: _AnyShardPart, *, fresh_version: bool
) -> PolygonIndex:
    """Materialize the partition sub-index a part describes.

    A :class:`_TwoLayerShardPart` attaches the layer's shared geometry
    segment plus its own coverage segment and composes them; a
    :class:`_FlatShardPart` attaches the front's single published
    segment (no store build); a :class:`_ShardPart` rebuilds from the
    shipped covering cells.  An attach keeps its ``SharedMemory``
    handle(s) open for the index's whole lifetime (pinned as the
    snapshot owner) — closing one while numpy views into the buffers
    exist is an error, so the handles are simply dropped with the index.

    ``fresh_version=False`` stamps the parent snapshot's version (initial
    attach / add_layer: every shard of one snapshot agrees).
    ``fresh_version=True`` floors the local counter above the parent's
    version and stamps a fresh one (swap: the worker's current sub-index
    may carry a *later* local version from a shard-local adaptive
    retrain, and the router rightly refuses rollbacks).
    """
    if fresh_version:
        ensure_version_floor(part.version)
        version = None
    else:
        version = part.version
    if isinstance(part, _TwoLayerShardPart):
        geometry_shm = _attach_shm(part.geometry_shm)
        coverage_shm = _attach_shm(part.coverage_shm)
        snapshot = FlatSnapshot.from_planes(
            FlatSnapshot.from_buffer(geometry_shm.buf, owner=geometry_shm),
            FlatSnapshot.from_buffer(coverage_shm.buf, owner=coverage_shm),
        )
        index = attach_index(snapshot, version=version)
        _install_mini_join(index, shard=part.shard)
        return index
    if isinstance(part, _FlatShardPart):
        shm = _attach_shm(part.shm_name)
        snapshot = FlatSnapshot.from_buffer(shm.buf, owner=shm)
        return attach_index(snapshot, version=version)
    return build_partition_index(
        part.num_polygons,
        part.members,
        part.cells,
        precision_meters=part.precision_meters,
        fanout_bits=part.fanout_bits,
        version=version,
    )


class _MiniJoinRefiner(RefinementEngine):
    """Class-aware refinement: owned and borrowed candidates run as two
    mini-joins whose accept masks scatter back in candidate order.

    Bit-identity argument: a candidate pair's PIP verdict depends only
    on the pair itself, so ANY partition of a batch — here by the
    polygon's home-shard class — composes to exactly the mask the
    unsplit engine computes, and merged shard results need no front-side
    dedup.  The split buys the two-layer plan its accounting: the
    ``owned_pairs`` / ``borrowed_pairs`` counters tell a shard how much
    of its refinement work it performs on straddlers homed elsewhere.
    """

    def __init__(
        self,
        polygons: Sequence[Polygon | None],
        *,
        shard: int,
        home_shards: np.ndarray,
        table: object = None,
    ):
        super().__init__(polygons)
        self._shard = int(shard)
        self._home_shards = home_shards
        if table is not None:
            self._table = table  # adopt the geometry plane's bucket table
        self.owned_pairs = 0
        self.borrowed_pairs = 0

    def _accept_candidates(
        self,
        cand_pids: np.ndarray,
        cand_lngs: np.ndarray,
        cand_lats: np.ndarray,
    ) -> np.ndarray:
        owned = self._home_shards[cand_pids] == self._shard
        num_owned = int(np.count_nonzero(owned))
        self.owned_pairs += num_owned
        self.borrowed_pairs += len(cand_pids) - num_owned
        if num_owned in (0, len(cand_pids)):
            return super()._accept_candidates(cand_pids, cand_lngs, cand_lats)
        accepted = np.zeros(len(cand_pids), dtype=bool)
        for mask in (owned, ~owned):
            idx = np.flatnonzero(mask)
            accepted[idx] = super()._accept_candidates(
                cand_pids[idx], cand_lngs[idx], cand_lats[idx]
            )
        return accepted


def _install_mini_join(index: PolygonIndex, *, shard: int) -> None:
    """Swap a freshly attached two-layer index onto the mini-join refiner.

    No-op when the coverage plane carries no home-shard table (a
    standalone ``pack_index`` snapshot): without the class assignment
    there is nothing to split on.
    """
    home_shards = index.snapshot.buffers.get("home_shards")
    if home_shards is None:
        return
    view = index.probe_view()
    base = view.refiner
    refiner = _MiniJoinRefiner(
        view.polygons,
        shard=shard,
        home_shards=home_shards,
        table=base._table if base is not None else None,
    )
    index._probe_view = dataclasses.replace(view, refiner=refiner)


def _build_shard_service(payload: _WorkerPayload) -> JoinService:
    layers = {
        name: _index_from_part(part, fresh_version=False)
        for name, part in payload.parts.items()
    }
    return JoinService(
        layers,
        cache_cells=payload.cache_cells,
        num_threads=1,  # share-nothing: one process == one lane of work
        adaptation=payload.adaptation,
        obs=Observability.from_config(payload.obs),
    )


def _apply_admin(service: JoinService, msg: tuple) -> object:
    """Execute one control message against a shard's JoinService.

    Shared by the process worker loop and the inline backend, so both
    backends cannot diverge in behavior.  ``ping`` is answered by the
    backends themselves (the reply carries the worker-side build/attach
    timing only they know).  Layer ops reply with their sub-index
    materialization time, so the front can meter attach latency.
    """
    op = msg[0]
    if op == "stats":
        return service.stats()
    if op == "swap":
        _, name, part = msg
        with Timer() as timer:
            index = _index_from_part(part, fresh_version=True)
        service.swap_layer(name, index)
        return {"build_seconds": timer.seconds}
    if op == "add_layer":
        _, name, part = msg
        with Timer() as timer:
            index = _index_from_part(part, fresh_version=False)
        service.add_layer(name, index)
        return {"build_seconds": timer.seconds}
    raise ValueError(f"unknown shard op: {op!r}")


class _AttachedSegment(SharedMemory):
    """An attachment whose finalizer tolerates still-exported views.

    A flat-snapshot worker pins its attach handle inside the index it
    serves; when the index is dropped (swap retirement, shutdown) the
    interpreter may finalize the handle *before* the numpy views into
    its buffer, and the stock destructor then raises — and prints — a
    ``BufferError``.  The mapping is released regardless once the last
    view goes away, so the error is pure shutdown noise; swallow it.
    An explicit, orderly ``close()`` (the batch-read path) is
    unaffected.
    """

    def __del__(self):
        with contextlib.suppress(BufferError):
            super().__del__()


def _attach_shm(name: str) -> SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On 3.13+ ``track=False`` keeps the attachment out of the resource
    tracker (the segment's lifetime belongs to the front, which unlinks
    it after the gather).  Pre-3.13 the attach registers with the
    tracker unconditionally — harmless here, because spawned workers
    share the front's tracker process and its cache is a set: the
    duplicate registration collapses and the front's unlink clears it.
    Explicitly unregistering instead would corrupt that shared cache.
    """
    try:
        return _AttachedSegment(name=name, track=False)  # type: ignore[call-arg]
    except TypeError:  # Python < 3.13: no track parameter
        return _AttachedSegment(name=name)


def _read_shm_batch(
    shm_name: str, total: int, offset: int, count: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Copy one shard's slice out of a scatter buffer, then detach."""
    shm = _attach_shm(shm_name)
    try:
        window = slice(offset, offset + count)
        buf = shm.buf
        lats = np.frombuffer(buf, np.float64, count=total)[window].copy()
        lngs = np.frombuffer(buf, np.float64, count=total, offset=8 * total)[
            window
        ].copy()
        cells = np.frombuffer(buf, np.uint64, count=total, offset=16 * total)[
            window
        ].copy()
        del buf
    finally:
        shm.close()
    return lats, lngs, cells


def _traced_service_join(
    service: JoinService,
    shard: int,
    trace: tuple[int, int] | None,
    lats: np.ndarray,
    lngs: np.ndarray,
    cells: np.ndarray,
    layer: str,
    exact: bool,
    materialize: bool,
):
    """Run one shard-side join, adopting the front's trace context.

    ``trace`` is the front dispatch's ``(trace_id, parent_span_id)`` (or
    ``None`` when the dispatch is untraced).  A traced join opens a
    ``shard`` root under the remote parent — the shard service's own
    ``dispatch``/``probe``/``refine`` spans nest beneath it — and returns
    ``(result, finished_spans)`` so the records travel back over the pipe
    for the front to adopt.  Shared by both backends, so the inline
    backend exercises the exact propagation path the process backend
    uses.
    """
    if trace is None:
        return service.join(
            lats, lngs, layer=layer, exact=exact, materialize=materialize,
            cell_ids=cells,
        )
    tracer = service.tracer
    with tracer.remote_root("shard", trace, shard=shard):
        result = service.join(
            lats, lngs, layer=layer, exact=exact, materialize=materialize,
            cell_ids=cells,
        )
    return result, tracer.take_last_trace()


def _worker_join(service: JoinService, msg: tuple, shard: int):
    _, layer, shm_name, total, offset, count, exact, materialize, trace = msg
    lats, lngs, cells = _read_shm_batch(shm_name, total, offset, count)
    return _traced_service_join(
        service, shard, trace, lats, lngs, cells, layer, exact, materialize
    )


def _shard_worker_main(conn, payload: _WorkerPayload) -> None:
    """Entry point of one shard worker process (spawn-safe: module level).

    Builds (or attaches) the partition sub-indexes and the shard's
    JoinService, then answers control messages until ``close`` or the
    pipe drops.  Every reply is ``("ok", value)`` or ``("err",
    traceback_text)`` — a failed request never kills the worker, so one
    poisoned batch cannot take a shard (and every batch it would have
    served) down with it.  The ``ping`` reply carries the service
    construction time, so the front's spawn barrier doubles as the
    attach-vs-rebuild measurement the bench reports.
    """
    try:
        with Timer() as build_timer:
            service = _build_shard_service(payload)
    except BaseException:
        try:
            conn.send(("err", traceback.format_exc()))
        finally:
            conn.close()
        return
    try:
        while True:
            try:
                msg = conn.recv()
            except EOFError:
                break
            if msg[0] == "close":
                conn.send(("ok", None))
                break
            try:
                if msg[0] == "join":
                    reply = ("ok", _worker_join(service, msg, payload.shard))
                elif msg[0] == "ping":
                    reply = ("ok", {"build_seconds": build_timer.seconds})
                else:
                    reply = ("ok", _apply_admin(service, msg))
            except BaseException:
                reply = ("err", traceback.format_exc())
            conn.send(reply)
    finally:
        service.close()
        conn.close()


# ----------------------------------------------------------------------
# Front-side shard clients and scatter buffers
# ----------------------------------------------------------------------


class _ShmBatch:
    """One dispatch's scatter buffer: ``lats | lngs | leaf cell ids``.

    The permuted (shard-grouped) batch is written once into a shared
    memory segment; workers read only their slice.  Coordinates never
    enter a pickle stream.
    """

    def __init__(self, lats: np.ndarray, lngs: np.ndarray, cells: np.ndarray):
        total = len(lats)
        self.total = total
        self._shm = SharedMemory(create=True, size=max(1, 24 * total))
        buf = self._shm.buf
        np.frombuffer(buf, np.float64, count=total)[:] = lats
        np.frombuffer(buf, np.float64, count=total, offset=8 * total)[:] = lngs
        np.frombuffer(buf, np.uint64, count=total, offset=16 * total)[:] = cells
        del buf

    @property
    def name(self) -> str:
        return self._shm.name

    def close(self) -> None:
        self._shm.close()
        with contextlib.suppress(FileNotFoundError):  # pragma: no cover - double close
            self._shm.unlink()


class _ArrayBatch:
    """Inline-backend stand-in for :class:`_ShmBatch` (plain arrays)."""

    def __init__(self, lats: np.ndarray, lngs: np.ndarray, cells: np.ndarray):
        self.lats = lats
        self.lngs = lngs
        self.cells = cells

    def close(self) -> None:
        pass


class _ProcessShard:
    """Front-side handle of one spawned shard worker."""

    def __init__(self, ctx, payload: _WorkerPayload):
        self.shard = payload.shard
        parent, child = ctx.Pipe()
        self._conn = parent
        self._process = ctx.Process(
            target=_shard_worker_main,
            args=(child, payload),
            name=f"repro-shard-{payload.shard}",
            daemon=True,
        )
        self._process.start()
        child.close()

    def start(self, msg: tuple) -> None:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise ShardWorkerError(
                self.shard, f"worker pipe closed: {exc}"
            ) from None

    def start_join(
        self,
        layer: str,
        batch: _ShmBatch,
        offset: int,
        count: int,
        exact: bool,
        materialize: bool,
        trace: tuple[int, int] | None = None,
    ) -> None:
        self.start(
            ("join", layer, batch.name, batch.total, offset, count, exact,
             materialize, trace)
        )

    def finish(self) -> object:
        try:
            kind, value = self._conn.recv()
        except (EOFError, OSError):
            raise ShardWorkerError(
                self.shard, "worker terminated unexpectedly"
            ) from None
        if kind == "err":
            raise ShardWorkerError(self.shard, value)
        return value

    def request(self, msg: tuple) -> object:
        self.start(msg)
        return self.finish()

    def close(self) -> None:
        with contextlib.suppress(BrokenPipeError, EOFError, OSError):
            self._conn.send(("close",))
            self._conn.recv()
        self._conn.close()
        self._process.join(timeout=10)
        if self._process.is_alive():  # pragma: no cover - hung worker
            self._process.terminate()
            self._process.join(timeout=10)


class _InlineShard:
    """In-process shard client: same partitioning, no processes.

    The test backend (and a debugging aid): hosts the shard's
    JoinService in the calling process, so the shard-boundary
    equivalence properties can run thousands of examples without paying
    process spawns, while exercising the exact scatter/gather/merge path
    the process backend uses.
    """

    def __init__(self, payload: _WorkerPayload):
        self.shard = payload.shard
        with Timer() as build_timer:
            self._service = _build_shard_service(payload)
        self._build_seconds = build_timer.seconds
        self._pending: tuple[str, object] | None = None

    def start(self, msg: tuple) -> None:
        try:
            if msg[0] == "ping":
                self._pending = ("ok", {"build_seconds": self._build_seconds})
            else:
                self._pending = ("ok", _apply_admin(self._service, msg))
        except BaseException as exc:
            self._pending = ("err", exc)

    def start_join(
        self,
        layer: str,
        batch: _ArrayBatch,
        offset: int,
        count: int,
        exact: bool,
        materialize: bool,
        trace: tuple[int, int] | None = None,
    ) -> None:
        window = slice(offset, offset + count)
        try:
            result = _traced_service_join(
                self._service,
                self.shard,
                trace,
                batch.lats[window],
                batch.lngs[window],
                batch.cells[window],
                layer,
                exact,
                materialize,
            )
        except BaseException as exc:
            self._pending = ("err", exc)
        else:
            self._pending = ("ok", result)

    def finish(self) -> object:
        assert self._pending is not None, "finish() without a start()"
        kind, value = self._pending
        self._pending = None
        if kind == "err":
            raise value  # type: ignore[misc]
        return value

    def request(self, msg: tuple) -> object:
        self.start(msg)
        return self.finish()

    def close(self) -> None:
        self._service.close()


def _scatter_gather(
    sends: list[tuple["_ProcessShard | _InlineShard", object]],
) -> tuple[list[tuple[int, object]], list[BaseException]]:
    """Send every request, then drain every worker that received one.

    ``sends`` is a list of ``(client, send_callable)`` pairs.  The drain
    discipline is the pipe-alignment invariant of the whole front: a
    worker that received a request MUST be drained even after another
    worker failed (and workers after a failed SEND must not be sent to),
    or a queued reply would be mistaken for the answer to a later
    request.  Returns ``(gathered, errors)``: ``gathered`` holds
    ``(slot, value)`` pairs for the sends that completed (slots index
    into ``sends``, in order), ``errors`` every send/finish failure in
    occurrence order.
    """
    sent: list[tuple[int, object]] = []
    errors: list[BaseException] = []
    for slot, (client, send) in enumerate(sends):
        try:
            send()
        except BaseException as exc:
            errors.append(exc)
            break
        sent.append((slot, client))
    gathered: list[tuple[int, object]] = []
    for slot, client in sent:
        try:
            gathered.append((slot, client.finish()))
        except BaseException as exc:
            errors.append(exc)
    return gathered, errors


# ----------------------------------------------------------------------
# The sharded service front
# ----------------------------------------------------------------------


def _check_shardable(name: str, index: object) -> PolygonIndex:
    if not isinstance(index, PolygonIndex):
        raise TypeError(
            f"layer {name!r}: sharded serving requires immutable "
            f"PolygonIndex snapshots, got {type(index).__name__} "
            "(serve dynamic indexes from a single-process JoinService, "
            "or compact them into a snapshot first)"
        )
    return index


class ShardedJoinService:
    """A multi-process, space-partitioned :class:`JoinService` front.

    Parameters
    ----------
    layers:
        A single :class:`PolygonIndex` (served as layer ``"default"``)
        or a mapping of layer name to index.  Sharded serving requires
        immutable snapshots; dynamic indexes belong in a single-process
        service.
    num_shards:
        Partitions per layer == worker processes.  Each worker hosts one
        :class:`JoinService` over its partitions of every layer.
    backend:
        ``"process"`` (default) spawns one worker process per shard and
        ships batches through shared memory; ``"inline"`` hosts the
        shard services in-process (tests, debugging).
    snapshot:
        ``"flat"`` (default) packs each shard's partition into flat
        snapshot segments once, front-side; workers (and every respawn
        or swap) attach zero-copy.  ``"rebuild"`` ships covering cells
        and rebuilds the store worker-side — the pre-flat behavior,
        kept for the attach-vs-rebuild benchmark.  Both serve
        bit-identical results.
    plan:
        ``"two-layer"`` (the default under ``snapshot="flat"``)
        publishes one shared geometry-plane segment per layer plus one
        private coverage-plane segment per shard — straddling polygons
        are never replicated, and workers run class-aware mini-joins.
        ``"replicate"`` (the default, and only option, under
        ``snapshot="rebuild"``) packs each shard's full sub-index with
        straddlers copied per shard — the pre-two-layer baseline the
        bench compares against.  Both serve bit-identical results.
    adaptation:
        Fans out to every shard worker: each shard runs its own
        adaptation loop over its partition and retrains/swaps locally.
    start_method:
        ``multiprocessing`` start method for the process backend.
        Defaults to ``"spawn"`` — the worker entry point is module-level
        and payloads are pickled explicitly, so workers never depend on
        forked state.
    obs:
        An :class:`~repro.obs.Observability` bundle for the front.  Its
        picklable settings also ship inside every worker payload, so
        shard workers run their own tracer; a traced front dispatch
        carries its ``(trace_id, span_id)`` context in the join message,
        the worker opens a ``shard`` root span under that parent, and
        the finished worker spans return over the pipe to be adopted
        into the front's ring — one end-to-end trace per dispatch.

    ``join`` results are bit-identical (every ``JoinResult`` statistic)
    to the equivalent single-process service and to ``PolygonIndex.join``
    — points route to exactly one shard, and partitioning never alters
    any cell's reference set.
    """

    def __init__(
        self,
        layers: PolygonIndex | Mapping[str, PolygonIndex],
        *,
        num_shards: int = 2,
        default_layer: str | None = None,
        cache_cells: int = 4096,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        latency_window: int = 8192,
        adaptation: AdaptationPolicy | None = None,
        backend: str = "process",
        snapshot: str = "flat",
        plan: str | None = None,
        start_method: str = "spawn",
        obs: Observability | None = None,
    ):
        if not isinstance(layers, Mapping):
            layers = {DEFAULT_LAYER: layers}
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if backend not in ("process", "inline"):
            raise ValueError(f"unknown backend {backend!r}")
        if snapshot not in ("flat", "rebuild"):
            raise ValueError(f"unknown snapshot mode {snapshot!r}")
        if plan is None:
            plan = "two-layer" if snapshot == "flat" else "replicate"
        if plan not in ("two-layer", "replicate"):
            raise ValueError(f"unknown plan mode {plan!r}")
        if plan == "two-layer" and snapshot == "rebuild":
            raise ValueError(
                'plan="two-layer" requires snapshot="flat": the rebuild '
                "path ships covering cells, not plane segments"
            )
        for name, index in layers.items():
            _check_shardable(name, index)
        self.num_shards = num_shards
        self.backend = backend
        self.snapshot = snapshot
        self.plan_mode = plan
        self._cache_cells = cache_cells
        self._obs = obs
        self._tracer: Tracer = obs.tracer if obs is not None else NULL_TRACER
        self._events = obs.events if obs is not None else None
        self._meters = DispatchMeters(obs.metrics) if obs is not None else None
        metrics = obs.metrics if obs is not None else None
        self._snapshot_bytes_gauge = (
            metrics.gauge(
                "shard_snapshot_bytes",
                "flat snapshot payload bytes published by the shard front",
            )
            if metrics is not None
            else None
        )
        self._attach_gauge = (
            metrics.gauge(
                "shard_attach_seconds",
                "slowest worker-side sub-index attach/rebuild, last fan-out",
            )
            if metrics is not None
            else None
        )
        self._geometry_bytes_gauge = (
            metrics.gauge(
                "shard_geometry_bytes",
                "shared geometry-plane bytes published by the shard front",
            )
            if metrics is not None
            else None
        )
        self._coverage_bytes_gauge = (
            metrics.gauge(
                "shard_coverage_bytes",
                "per-shard coverage/sub-index bytes published by the front",
            )
            if metrics is not None
            else None
        )
        # The front's layer registry IS a LayerRouter: copy-on-write
        # snapshot reads, default-layer resolution, duplicate/rollback
        # validation — one implementation shared with JoinService.
        self._router = LayerRouter(layers, default=default_layer)
        self._plans: dict[str, ShardPlan] = {  #: guarded_by(_lock)
            name: ShardPlan.from_index(index, num_shards)
            for name, index in layers.items()
        }
        # Flat-snapshot segments owned by the front, per layer, for the
        # CURRENT generation; retired (and unlinked) on swap and close.
        # Under plan="two-layer" a layer's FIRST segment is its shared
        # geometry plane, followed by one coverage segment per shard.
        self._segments: dict[str, tuple[SharedMemory, ...]] = {}  #: guarded_by(_lock)
        # Published (geometry, per-shard) payload bytes and the measured
        # geometry replication factor, per layer, current generation.
        self._plane_bytes: dict[str, tuple[int, int]] = {}  #: guarded_by(_lock)
        self._replication: dict[str, float] = {}  #: guarded_by(_lock)
        # One lock serializes scatter/gather dispatches and admin fan-outs:
        # worker pipes are request/response channels and must never see
        # interleaved conversations.
        self._lock = threading.Lock()
        self._closed = False  #: guarded_by(_lock, writes)
        self._poisoned = False  #: guarded_by(_lock, writes)
        self._clients: list[_ProcessShard | _InlineShard] = []  #: guarded_by(_lock)
        self._spawn_seconds: tuple[float, ...] = ()
        try:
            parts_by_layer: dict[str, list] = {}
            for name, index in self._router.items():
                parts, segments, plane_bytes = self._publish_parts(
                    self._plans[name], index
                )
                parts_by_layer[name] = parts
                if segments:
                    self._segments[name] = segments
                self._plane_bytes[name] = plane_bytes
                self._replication[name] = self._measured_replication(
                    self._plans[name]
                )
            payloads = [
                _WorkerPayload(
                    shard=shard,
                    parts={
                        name: parts[shard]
                        for name, parts in parts_by_layer.items()
                    },
                    cache_cells=cache_cells,
                    adaptation=adaptation,
                    obs=obs.config() if obs is not None else None,
                )
                for shard in range(num_shards)
            ]
            if backend == "inline":
                self._clients = [_InlineShard(p) for p in payloads]
                reports = [
                    client.request(("ping",)) for client in self._clients
                ]
            else:
                # Start the parent's resource tracker BEFORE creating
                # workers: forked children must inherit it (a worker
                # that lazily spawns its own tracker on shm attach would
                # warn about "leaked" segments the front rightly owns
                # and unlinks).  Spawned children receive the fd anyway.
                from multiprocessing import resource_tracker

                resource_tracker.ensure_running()
                ctx = get_context(start_method)
                self._clients = [_ProcessShard(ctx, p) for p in payloads]
                # Barrier: surfaces build errors; the replies carry each
                # worker's service construction time (attach or rebuild).
                reports = [
                    client.request(("ping",)) for client in self._clients
                ]
        except BaseException:
            # A mid-spawn failure must not leak the published segments:
            # the workers that did come up only hold attachments, and
            # the front owns every segment it created.
            for client in self._clients:
                client.close()
            self._release_segments(self._segments)
            self._segments = {}
            raise
        self._spawn_seconds = tuple(
            float(report["build_seconds"]) for report in reports
        )
        self._set_snapshot_gauges(self._spawn_seconds)
        if self._events is not None:
            for payload in payloads:
                self._events.emit(
                    "shard_spawn",
                    shard=payload.shard,
                    backend=backend,
                    snapshot=snapshot,
                    plan=plan,
                    spawn_seconds=self._spawn_seconds[payload.shard],
                    num_owned=sum(
                        len(p.owned[payload.shard])
                        for p in self._plans.values()
                    ),
                    num_borrowed=sum(
                        len(p.borrowed[payload.shard])
                        for p in self._plans.values()
                    ),
                )
        self._recorder = LatencyRecorder(window=latency_window)
        self._batcher = MicroBatcher(
            self._flush_lookups,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            metrics=obs.metrics if obs is not None else None,
        )

    # ------------------------------------------------------------------
    # Layer routing
    # ------------------------------------------------------------------

    @property
    def layers(self) -> tuple[str, ...]:
        return self._router.names

    def plan(self, layer: str | None = None) -> ShardPlan:
        """The live shard plan of one layer."""
        with self._lock:
            name, _ = self._router.resolve(layer)
            return self._plans[name]

    @property
    def spawn_seconds(self) -> tuple[float, ...]:
        """Per-shard worker-side service construction time (the spawn
        barrier's ping replies): a zero-copy attach under ``"flat"``, a
        full partition store build under ``"rebuild"``."""
        return self._spawn_seconds

    # ------------------------------------------------------------------
    # Snapshot segment publication (flat mode)
    # ------------------------------------------------------------------

    def _publish_parts(
        self, plan: ShardPlan, index: PolygonIndex
    ) -> tuple[
        list[_AnyShardPart], tuple[SharedMemory, ...], tuple[int, int]
    ]:
        """One part per shard; ``"flat"`` publishes front-owned segments.

        Returns ``(parts, segments, (geometry_bytes, coverage_bytes))``
        — the payload split between the layer's single shared
        geometry-plane segment and the per-shard segments (coverage
        planes under ``"two-layer"``, full replicated sub-indexes under
        ``"replicate"``; ``(0, 0)`` under rebuild, which publishes
        nothing).  The returned segments are the new generation's — the
        caller installs them into ``_segments`` only once the fan-out
        succeeded, and must release them itself on failure.  Under
        ``"two-layer"`` the geometry segment leads the tuple.
        """
        if self.snapshot == "rebuild":
            return (
                [
                    _part_for(plan, shard, index)
                    for shard in range(self.num_shards)
                ],
                (),
                (0, 0),
            )
        parts: list[_AnyShardPart] = []
        segments: list[SharedMemory] = []
        try:
            if self.plan_mode == "two-layer":
                geometry = pack_geometry_plane(index)
                geometry_segment = geometry.to_shared_memory()
                segments.append(geometry_segment)
                geometry_bytes = int(geometry.nbytes)
                coverage_bytes = 0
                fanout_bits = int(getattr(index.store, "fanout_bits", 8))
                for shard in range(self.num_shards):
                    covering, store, _ = build_partition_store(
                        plan.cells[shard], fanout_bits=fanout_bits
                    )
                    coverage = pack_coverage_plane(
                        covering,
                        store,
                        home_shards=plan.home_shards,
                        meta_extra={"shard": shard},
                    )
                    segment = coverage.to_shared_memory()
                    segments.append(segment)
                    coverage_bytes += int(coverage.nbytes)
                    parts.append(
                        _TwoLayerShardPart(
                            shard=shard,
                            geometry_shm=geometry_segment.name,
                            geometry_nbytes=geometry_bytes,
                            coverage_shm=segment.name,
                            coverage_nbytes=int(coverage.nbytes),
                            version=int(index.version),
                        )
                    )
                return parts, tuple(segments), (geometry_bytes, coverage_bytes)
            coverage_bytes = 0
            for shard in range(self.num_shards):
                part, segment = _flat_part_for(plan, shard, index)
                parts.append(part)
                segments.append(segment)
                coverage_bytes += int(part.nbytes)
        except BaseException:
            self._release_segments({"": tuple(segments)})
            raise
        return parts, tuple(segments), (0, coverage_bytes)

    @staticmethod
    def _release_segments(
        segments: Mapping[str, tuple[SharedMemory, ...]]
    ) -> None:
        """Unlink (and drop) every segment of the given generations."""
        for generation in segments.values():
            for segment in generation:
                with contextlib.suppress(FileNotFoundError):  # pragma: no cover - already gone
                    segment.close()
                    segment.unlink()

    def _measured_replication(self, plan: ShardPlan) -> float:
        """Published geometry copies per distinct referenced polygon.

        Two-layer publication stores geometry in exactly one shared
        segment no matter how many coverage planes reference a polygon
        (:func:`~repro.core.flat.pack_coverage_plane` rejects geometry
        buffers outright), so its measured factor is structurally 1.0.
        Replicate and rebuild publication copy a straddler into every
        shard it touches — the plan's membership-derived factor.
        """
        if self.plan_mode == "two-layer" and self.snapshot == "flat":
            return 1.0
        return plan.replication_factor

    def replication_factor(self, layer: str | None = None) -> float:
        """Published geometry copies per distinct polygon in one layer."""
        with self._lock:
            name, _ = self._router.resolve(layer)
            return self._replication[name]

    def plane_bytes(self, layer: str | None = None) -> tuple[int, int]:
        """One layer's published ``(shared geometry, per-shard)`` payload
        bytes for the current generation (``(0, 0)`` under rebuild)."""
        with self._lock:
            name, _ = self._router.resolve(layer)
            return self._plane_bytes[name]

    #: requires(_lock)
    def _set_snapshot_gauges(self, build_seconds: Sequence[float]) -> None:
        if self._snapshot_bytes_gauge is not None:
            self._snapshot_bytes_gauge.set(
                sum(
                    segment.size
                    for generation in self._segments.values()
                    for segment in generation
                )
            )
        if self._geometry_bytes_gauge is not None:
            self._geometry_bytes_gauge.set(
                sum(geometry for geometry, _ in self._plane_bytes.values())
            )
        if self._coverage_bytes_gauge is not None:
            self._coverage_bytes_gauge.set(
                sum(coverage for _, coverage in self._plane_bytes.values())
            )
        if self._attach_gauge is not None and build_seconds:
            self._attach_gauge.set(max(build_seconds))

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def join(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        *,
        layer: str | None = None,
        exact: bool = False,
        materialize: bool = False,
    ) -> JoinResult:
        """Join a point batch against one layer across all shards."""
        self._check_open()
        name, _ = self._router.resolve(layer)  # fail fast on unknown layers
        lats = np.ascontiguousarray(lats, dtype=np.float64)
        lngs = np.ascontiguousarray(lngs, dtype=np.float64)
        with Timer() as timer:
            with self._tracer.dispatch(
                "dispatch", layer=name, points=len(lats), exact=exact
            ):
                result = self._scatter_join(
                    name, lats, lngs, exact, materialize
                )
        self._recorder.record(
            requests=1,
            points=len(lats),
            pairs=result.num_pairs,
            seconds=timer.seconds,
        )
        if self._meters is not None:
            self._meters.observe(result, timer.seconds)
        return result

    def join_layers(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        *,
        layers: Sequence[str] | None = None,
        exact: bool = False,
    ) -> dict[str, JoinResult]:
        """Fan a batch out to several layers (``None`` = every layer).

        Leaf cell ids depend only on the coordinates: computed once,
        shared across every layer's scatter.
        """
        self._check_open()
        routed = self._router.select(layers)  # ONE registry snapshot
        lats = np.ascontiguousarray(lats, dtype=np.float64)
        lngs = np.ascontiguousarray(lngs, dtype=np.float64)
        cell_ids = cell_ids_from_lat_lng_arrays(lats, lngs)
        results: dict[str, JoinResult] = {}
        for position, (name, _) in enumerate(routed):
            with Timer() as timer:
                with self._tracer.dispatch(
                    "dispatch", layer=name, points=len(lats), exact=exact
                ):
                    results[name] = self._scatter_join(
                        name, lats, lngs, exact, False, cell_ids=cell_ids
                    )
            self._recorder.record(
                requests=1 if position == 0 else 0,
                points=len(lats),
                pairs=results[name].num_pairs,
                seconds=timer.seconds,
            )
            if self._meters is not None:
                self._meters.observe(results[name], timer.seconds)
        return results

    def _scatter_join(
        self,
        name: str,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
        cell_ids: np.ndarray | None = None,
    ) -> JoinResult:
        if cell_ids is None:
            cell_ids = cell_ids_from_lat_lng_arrays(lats, lngs)
        if len(lats) == 0:
            _, index = self._router.resolve(name)
            return _merge_parts(
                0, len(index.polygons), [], [], None, None, materialize, 0.0
            )
        # Capture the dispatch root's context BEFORE opening child spans:
        # worker-side `shard` roots parent to the dispatch itself, as
        # siblings of the front's scatter/gather/merge phases.
        trace_ctx = self._tracer.context()
        with self._lock, Timer() as timer:
            # Resolve UNDER the dispatch lock: index, plan, and the
            # workers' sub-indexes always belong to the same generation,
            # even when a swap_layer lands between the caller's routing
            # check and this dispatch.
            _, index = self._router.resolve(name)
            num_polygons = len(index.polygons)
            plan = self._plans[name]
            with self._tracer.span("scatter", points=len(lats)) as span:
                shard_of = plan.shard_for(cell_ids)
                order = np.argsort(shard_of, kind="stable")
                per_shard = np.bincount(shard_of, minlength=plan.num_shards)
                offsets = np.zeros(plan.num_shards + 1, dtype=np.int64)
                np.cumsum(per_shard, out=offsets[1:])
                batch = self._make_batch(
                    lats[order], lngs[order], cell_ids[order]
                )
                engaged = [
                    shard
                    for shard in range(plan.num_shards)
                    if per_shard[shard] > 0
                ]
                span.set(shards=len(engaged))
            try:
                sends = [
                    (
                        self._clients[shard],
                        lambda shard=shard: self._clients[shard].start_join(
                            name,
                            batch,
                            int(offsets[shard]),
                            int(per_shard[shard]),
                            exact,
                            materialize,
                            trace_ctx,
                        ),
                    )
                    for shard in engaged
                ]
                with self._tracer.span("gather", shards=len(engaged)):
                    gathered, errors = _scatter_gather(sends)
                if errors:
                    raise errors[0]
            finally:
                batch.close()
        # A traced dispatch gets (result, worker_spans) pairs back; fold
        # the workers' finished spans into the front's ring so the whole
        # cross-process trace reads from one place.
        parts: list[JoinResult] = []
        part_shards: list[int] = []
        for slot, value in gathered:
            if trace_ctx is not None:
                part, worker_spans = value
                if worker_spans:
                    self._tracer.adopt(worker_spans)
            else:
                part = value
            parts.append(part)
            part_shards.append(engaged[slot])
        with self._tracer.span("merge", shards=len(parts)):
            return _merge_parts(
                len(lats),
                num_polygons,
                parts,
                part_shards,
                order,
                offsets,
                materialize,
                timer.seconds,
            )

    def _make_batch(self, lats, lngs, cells):
        if self.backend == "inline":
            return _ArrayBatch(lats, lngs, cells)
        return _ShmBatch(lats, lngs, cells)

    # ------------------------------------------------------------------
    # Single-point path (micro-batched at the front)
    # ------------------------------------------------------------------

    def submit(
        self,
        lat: float,
        lng: float,
        *,
        layer: str | None = None,
        exact: bool = True,
    ):
        """Enqueue a lookup; resolves to the sorted containing polygon ids."""
        self._check_open()
        name, _ = self._router.resolve(layer)
        return self._batcher.submit(
            LookupRequest(lat=float(lat), lng=float(lng), layer=name, exact=exact)
        )

    def lookup(
        self,
        lat: float,
        lng: float,
        *,
        layer: str | None = None,
        exact: bool = True,
    ) -> list[int]:
        """Blocking single-point lookup (rides the front micro-batcher)."""
        return self.submit(lat, lng, layer=layer, exact=exact).result()

    def _flush_lookups(
        self, layer: str | None, exact: bool, requests: Sequence[LookupRequest]
    ) -> None:
        name, _ = self._router.resolve(layer)
        lats = np.fromiter((r.lat for r in requests), np.float64, len(requests))
        lngs = np.fromiter((r.lng for r in requests), np.float64, len(requests))
        with Timer() as timer:
            with self._tracer.dispatch(
                "dispatch", layer=name, points=len(requests), kind="lookup"
            ):
                result = self._scatter_join(name, lats, lngs, exact, True)
                per_point: list[list[int]] = [[] for _ in requests]
                for point, pid in zip(
                    result.pair_points.tolist(),
                    result.pair_polygons.tolist(),
                ):
                    per_point[point].append(int(pid))
        self._recorder.record(
            requests=len(requests),
            points=len(requests),
            pairs=result.num_pairs,
            seconds=timer.seconds,
        )
        if self._meters is not None:
            self._meters.observe(result, timer.seconds)
        for request, pids in zip(requests, per_point):
            request.future.set_result(sorted(pids))

    # ------------------------------------------------------------------
    # Layer management (fans out per shard)
    # ------------------------------------------------------------------

    def swap_layer(self, name: str, index: PolygonIndex) -> PolygonIndex:
        """Atomically replace a layer with a newer snapshot on every shard.

        Re-plans the partition for the new snapshot and fans the swap
        out; each worker builds its new sub-index in parallel with the
        others.  The front's plan flips only after every shard swapped,
        so dispatches keep scattering by the plan that matches what the
        workers serve (the dispatch lock makes the fan-out atomic with
        respect to joins).
        """
        self._check_open()
        _check_shardable(name, index)
        with self._lock:
            if name not in self._router:
                raise KeyError(
                    f"cannot swap unknown layer {name!r}; "
                    f"registered layers: {list(self._router.names)}"
                )
            _, previous = self._router.resolve(name)
            if index.version <= previous.version:
                raise ValueError(
                    f"refusing to swap layer {name!r} to version "
                    f"{index.version} (currently {previous.version})"
                )
            plan = ShardPlan.from_index(index, self.num_shards)
            parts, segments, plane_bytes = self._publish_parts(plan, index)
            try:
                reports = self._admin_fan_out(
                    [("swap", name, part) for part in parts]
                )
            except BaseException:
                # Whether the workers kept the previous generation or
                # the service got poisoned, the new segments are the
                # front's to reclaim (attached workers keep mappings).
                self._release_segments({name: segments})
                raise
            # Publish only after EVERY shard swapped, so dispatches always
            # scatter by the plan matching what the workers serve.  The
            # retired generation's segments unlink now; workers holding
            # the old attachment keep their mappings until they drop it.
            self._release_segments({name: self._segments.pop(name, ())})
            if segments:
                self._segments[name] = segments
            self._plans[name] = plan
            self._plane_bytes[name] = plane_bytes
            self._replication[name] = self._measured_replication(plan)
            previous = self._router.swap(name, index)
            self._set_snapshot_gauges(
                [report["build_seconds"] for report in reports]
            )
        if self._events is not None:
            self._events.emit(
                "swap",
                layer=name,
                version=int(index.version),
                shards=self.num_shards,
            )
        return previous

    def add_layer(self, name: str, index: PolygonIndex) -> None:
        """Register an additional layer on the live sharded service."""
        self._check_open()
        if not name:
            raise ValueError("layer name must be non-empty")
        _check_shardable(name, index)
        with self._lock:
            if name in self._router:
                raise ValueError(f"layer {name!r} is already registered")
            plan = ShardPlan.from_index(index, self.num_shards)
            parts, segments, plane_bytes = self._publish_parts(plan, index)
            try:
                reports = self._admin_fan_out(
                    [("add_layer", name, part) for part in parts]
                )
            except BaseException:
                self._release_segments({name: segments})
                raise
            if segments:
                self._segments[name] = segments
            self._plans[name] = plan
            self._plane_bytes[name] = plane_bytes
            self._replication[name] = self._measured_replication(plan)
            self._router.add(name, index)
            self._set_snapshot_gauges(
                [report["build_seconds"] for report in reports]
            )
        if self._events is not None:
            self._events.emit(
                "add_layer",
                layer=name,
                version=int(index.version),
                shards=self.num_shards,
            )

    def _admin_fan_out(self, messages: list[tuple]) -> list:  #: requires(_lock)
        """Scatter one admin message per shard; gather before returning.

        All-or-nothing is required for layer management: if SOME shards
        applied the change and others did not, the workers disagree on
        the layer's partition and no front-side plan can match all of
        them — the service is poisoned (every later call raises) rather
        than silently serving mixed generations.  A failure on EVERY
        shard leaves the previous state intact everywhere, so the
        service stays usable.  Returns the per-shard reply values (the
        workers' sub-index materialization timings).
        """
        gathered, errors = _scatter_gather(
            [
                (client, lambda c=client, m=msg: c.start(m))
                for client, msg in zip(self._clients, messages)
            ]
        )
        if errors:
            if 0 < len(gathered) < len(self._clients):
                self._poisoned = True
            raise errors[0]
        return [value for _, value in gathered]

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    @property
    def obs(self) -> Observability | None:
        """The front's observability bundle (``None`` when telemetry is off)."""
        return self._obs

    @property
    def tracer(self) -> Tracer:
        """The front's phase tracer (the shared disabled tracer if unset)."""
        return self._tracer

    def stats(self) -> ServiceStats:
        """Merged snapshot with per-shard detail in ``stats.shards``.

        Front-level latency covers whole scatter/gather dispatches;
        cache counters sum across shards per layer; each shard's own
        ``ServiceStats`` (including its adaptation state) rides along in
        ``shards``, with the shard's polygons split into owned vs
        borrowed classes (``sum(num_owned) over shards`` == the layer
        polygon counts — no double-counted straddlers), and
        ``stats.replication`` carries each layer's measured geometry
        replication factor.  Adaptation entries are keyed ``layer@shardN`` so the
        point-weighted ``live_sth_rate`` and ``retrains`` aggregates stay
        correct across the fan-out.
        """
        self._check_open()
        with self._lock:
            # Scatter the stats request to every worker before gathering,
            # so the per-shard snapshot work overlaps instead of paying N
            # sequential round-trips under the dispatch lock.
            gathered, errors = _scatter_gather(
                [
                    (client, lambda c=client: c.start(("stats",)))
                    for client in self._clients
                ]
            )
            if errors:
                raise errors[0]
            shard_stats: list[ServiceStats] = [value for _, value in gathered]
            indexes = dict(self._router.items())
            plans = dict(self._plans)
            replication = dict(self._replication)
        cache: dict[str, CacheStats] = {}
        for name in indexes:
            slices = [s.cache[name] for s in shard_stats if name in s.cache]
            if slices:
                cache[name] = CacheStats(
                    capacity=sum(s.capacity for s in slices),
                    size=sum(s.size for s in slices),
                    hits=sum(s.hits for s in slices),
                    misses=sum(s.misses for s in slices),
                    evictions=sum(s.evictions for s in slices),
                )
        layers = {
            name: LayerStatus(
                version=index.version,
                delta_size=0,
                num_polygons=index.num_polygons,
            )
            for name, index in indexes.items()
        }
        adaptation = {
            f"{layer}@shard{shard}": status
            for shard, stats in enumerate(shard_stats)
            for layer, status in stats.adaptation.items()
        }
        shards = tuple(
            ShardStatus(
                shard=shard,
                num_owned=sum(
                    len(plan.owned[shard]) for plan in plans.values()
                ),
                num_borrowed=sum(
                    len(plan.borrowed[shard]) for plan in plans.values()
                ),
                stats=stats,
            )
            for shard, stats in enumerate(shard_stats)
        )
        return self._recorder.snapshot(
            cache, layers, adaptation, shards=shards, replication=replication
        )

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")
        if self._poisoned:
            raise RuntimeError(
                "service is inconsistent: a layer swap/add failed on some "
                "shards after succeeding on others; close it and rebuild"
            )

    def close(self) -> None:
        """Drain pending lookups, stop every shard worker, reap processes.

        Unlinks every snapshot segment the front published — after the
        workers are down, so no attach can race the unlink (and even if
        one did, an attached mapping survives its unlink on POSIX).
        """
        with self._lock:
            if self._closed:
                return
            # Flip under the lock: two racing close() calls could both
            # pass an unlocked check and double-release every segment.
            self._closed = True
        # Drain OUTSIDE the lock: the batcher's flush path dispatches
        # through _scatter_join, which takes this same lock.
        self._batcher.close()
        with self._lock:
            for client in self._clients:
                client.close()
            self._release_segments(self._segments)
            self._segments = {}
            self._plane_bytes = {}
            self._replication = {}
            self._set_snapshot_gauges(())

    def __enter__(self) -> "ShardedJoinService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _merge_parts(
    num_points: int,
    num_polygons: int,
    parts: list[JoinResult],
    engaged: list[int],
    order: np.ndarray | None,
    offsets: np.ndarray | None,
    materialize: bool,
    wall_seconds: float,
) -> JoinResult:
    """Merge per-shard partial results into one :class:`JoinResult`.

    Every point was joined by exactly one shard, so all statistics merge
    by summation; the scatter/gather wall time is apportioned between
    probe and refine by the workers' busy ratio, mirroring the morsel
    merge, so the two still sum to elapsed front time.
    """
    probe_total = sum(p.probe_seconds for p in parts)
    refine_total = sum(p.refine_seconds for p in parts)
    busy_total = probe_total + refine_total
    refine_wall = (
        wall_seconds * refine_total / busy_total if busy_total > 0 else 0.0
    )
    counts = (
        np.sum([p.counts for p in parts], axis=0)
        if parts
        else np.zeros(num_polygons, dtype=np.int64)
    )
    merged = JoinResult(
        num_points=num_points,
        counts=counts,
        num_pairs=sum(p.num_pairs for p in parts),
        num_true_hit_pairs=sum(p.num_true_hit_pairs for p in parts),
        num_candidate_pairs=sum(p.num_candidate_pairs for p in parts),
        num_pip_tests=sum(p.num_pip_tests for p in parts),
        solely_true_hits=sum(p.solely_true_hits for p in parts),
        probe_seconds=wall_seconds - refine_wall,
        refine_seconds=refine_wall,
    )
    if materialize:
        if parts:
            merged.pair_points = np.concatenate(
                [
                    order[offsets[shard] + part.pair_points]
                    for shard, part in zip(engaged, parts)
                ]
            )
            merged.pair_polygons = np.concatenate(
                [part.pair_polygons for part in parts]
            )
        else:
            merged.pair_points = np.zeros(0, dtype=np.int64)
            merged.pair_polygons = np.zeros(0, dtype=np.int64)
    return merged
