"""Multi-layer routing: several named polygon layers behind one service.

A production location service rarely joins against a single polygon set —
a ride request is matched against surge zones, airport geofences, and
administrative boundaries at once.  :class:`LayerRouter` hosts multiple
named indexes (anything satisfying :class:`JoinableIndex`) and resolves
which layer(s) a request fans out to.  Because leaf cell ids depend only
on the point coordinates, the service computes them once per batch and
reuses them across every routed layer.

:meth:`LayerRouter.swap` atomically replaces a layer's index with a new
versioned snapshot: requests already dispatched keep the snapshot they
resolved (it is immutable), while every later ``resolve`` sees the new
one — the zero-downtime half of the index lifecycle.

Reads are lock-free via copy-on-write: the registry dict is never mutated
in place — ``add``/``swap`` build a fresh dict under the writer lock and
publish it with one reference assignment.  A reader that grabbed the old
dict keeps iterating it safely (it will never change again), so a
concurrent ``add_layer`` during a ``join_layers`` fan-out can never raise
``RuntimeError: dictionary changed size during iteration``.
"""

from __future__ import annotations

import threading
from collections.abc import Iterable, Mapping, Sequence
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.builder import ProbeView
from repro.geo.polygon import Polygon


@runtime_checkable
class JoinableIndex(Protocol):
    """What the serving layer requires of a registered index.

    Satisfied by :class:`~repro.core.builder.PolygonIndex` and
    :class:`~repro.core.dynamic.DynamicPolygonIndex`; typing layer
    registrations with this protocol lets static checkers reject
    non-index objects at the call site.
    """

    version: int
    polygons: Sequence[Polygon | None]
    num_polygons: int  # live count: holes and tombstones excluded

    def cell_ids_for(self, lats: np.ndarray, lngs: np.ndarray) -> np.ndarray: ...

    def probe_view(self) -> ProbeView: ...


def _validate_index(name: str, index: JoinableIndex) -> JoinableIndex:
    if not isinstance(index, JoinableIndex):
        raise TypeError(
            f"layer {name!r}: {type(index).__name__} does not satisfy "
            "JoinableIndex (needs version, polygons, num_polygons, "
            "cell_ids_for, probe_view)"
        )
    return index


class LayerRouter:
    """Registry of named polygon layers with a default-layer convention.

    ``default`` names the layer used when a request does not specify one;
    when omitted, a single-layer router treats its only layer as the
    default and a multi-layer router requires an explicit layer name.
    """

    def __init__(
        self,
        layers: Mapping[str, JoinableIndex] | None = None,
        default: str | None = None,
    ):
        self._lock = threading.Lock()
        # Published registry snapshot.  NEVER mutated in place: writers
        # replace it wholesale under self._lock (copy-on-write), readers
        # load it once per operation and work on that immutable snapshot.
        self._layers: dict[str, JoinableIndex] = {}  #: guarded_by(_lock, writes)
        for name, index in (layers or {}).items():
            self.add(name, index)
        if default is not None and default not in self._layers:
            raise KeyError(f"default layer {default!r} is not registered")
        self._default = default

    def add(self, name: str, index: JoinableIndex) -> None:
        if not name:
            raise ValueError("layer name must be non-empty")
        _validate_index(name, index)
        with self._lock:
            if name in self._layers:
                raise ValueError(f"layer {name!r} is already registered")
            layers = dict(self._layers)
            layers[name] = index
            self._layers = layers

    def swap(self, name: str, index: JoinableIndex) -> JoinableIndex:
        """Atomically replace a registered layer's index; returns the old.

        In-flight requests that already resolved the layer keep the
        snapshot they hold; every resolve after this call returns the new
        index.  The replacement must be newer (a strictly greater
        ``version``) so a late or duplicated swap can never roll a layer
        back to a stale snapshot.
        """
        _validate_index(name, index)
        with self._lock:
            try:
                previous = self._layers[name]
            except KeyError:
                raise KeyError(
                    f"cannot swap unknown layer {name!r}; "
                    f"registered layers: {list(self._layers)}"
                ) from None
            if index.version <= previous.version:
                raise ValueError(
                    f"refusing to swap layer {name!r} to version "
                    f"{index.version} (currently {previous.version})"
                )
            layers = dict(self._layers)
            layers[name] = index
            self._layers = layers
            return previous

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._layers)

    @property
    def default(self) -> str | None:
        layers = self._layers  # one snapshot for both the len and the peek
        if self._default is not None:
            return self._default
        if len(layers) == 1:
            return next(iter(layers))
        return None

    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def resolve(self, name: str | None = None) -> tuple[str, JoinableIndex]:
        """The ``(name, index)`` a single-layer request routes to."""
        return self._resolve_in(self._layers, name)

    def _resolve_in(
        self, layers: dict[str, JoinableIndex], name: str | None
    ) -> tuple[str, JoinableIndex]:
        """Resolve against one registry snapshot (consistent fan-outs)."""
        if name is None:
            name = self._default
            if name is None and len(layers) == 1:
                name = next(iter(layers))
            if name is None:
                raise KeyError(
                    "no layer given and no default layer; choose one of "
                    f"{list(layers)}"
                )
        try:
            return name, layers[name]
        except KeyError:
            raise KeyError(
                f"unknown layer {name!r}; registered layers: {list(layers)}"
            ) from None

    def select(
        self, names: Sequence[str] | None = None
    ) -> list[tuple[str, JoinableIndex]]:
        """The layers a fan-out request routes to (``None`` = all layers).

        The whole fan-out resolves against ONE registry snapshot, so a
        concurrent add/swap cannot make two names in the same request see
        different registry states.
        """
        layers = self._layers
        if names is None:
            return list(layers.items())
        return [self._resolve_in(layers, name) for name in names]

    def items(self) -> Iterable[tuple[str, JoinableIndex]]:
        """A point-in-time snapshot, safe to iterate during add/swap."""
        return list(self._layers.items())
