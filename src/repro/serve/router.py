"""Multi-layer routing: several named polygon layers behind one service.

A production location service rarely joins against a single polygon set —
a ride request is matched against surge zones, airport geofences, and
administrative boundaries at once.  :class:`LayerRouter` hosts multiple
named :class:`~repro.core.builder.PolygonIndex` instances and resolves
which layer(s) a request fans out to.  Because leaf cell ids depend only
on the point coordinates, the service computes them once per batch and
reuses them across every routed layer.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence


class LayerRouter:
    """Registry of named polygon layers with a default-layer convention.

    ``default`` names the layer used when a request does not specify one;
    when omitted, a single-layer router treats its only layer as the
    default and a multi-layer router requires an explicit layer name.
    """

    def __init__(
        self,
        layers: Mapping[str, object] | None = None,
        default: str | None = None,
    ):
        self._layers: dict[str, object] = {}
        for name, index in (layers or {}).items():
            self.add(name, index)
        if default is not None and default not in self._layers:
            raise KeyError(f"default layer {default!r} is not registered")
        self._default = default

    def add(self, name: str, index: object) -> None:
        if not name:
            raise ValueError("layer name must be non-empty")
        if name in self._layers:
            raise ValueError(f"layer {name!r} is already registered")
        self._layers[name] = index

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._layers)

    @property
    def default(self) -> str | None:
        if self._default is not None:
            return self._default
        if len(self._layers) == 1:
            return next(iter(self._layers))
        return None

    def __len__(self) -> int:
        return len(self._layers)

    def __contains__(self, name: str) -> bool:
        return name in self._layers

    def resolve(self, name: str | None = None) -> tuple[str, object]:
        """The ``(name, index)`` a single-layer request routes to."""
        if name is None:
            name = self.default
            if name is None:
                raise KeyError(
                    "no layer given and no default layer; choose one of "
                    f"{list(self._layers)}"
                )
        try:
            return name, self._layers[name]
        except KeyError:
            raise KeyError(
                f"unknown layer {name!r}; registered layers: {list(self._layers)}"
            ) from None

    def select(
        self, names: Sequence[str] | None = None
    ) -> list[tuple[str, object]]:
        """The layers a fan-out request routes to (``None`` = all layers)."""
        if names is None:
            return list(self._layers.items())
        return [self.resolve(name) for name in names]

    def items(self) -> Iterable[tuple[str, object]]:
        return self._layers.items()
