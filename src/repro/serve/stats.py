"""Service-side observability: latency percentiles and throughput.

A :class:`LatencyRecorder` keeps a bounded window of per-dispatch
latencies (a dispatch is one vectorized join — a coalesced micro-batch or
an explicit batch call) plus monotonically growing totals, and snapshots
them into an immutable :class:`ServiceStats`.  Percentiles are over the
window (recent behavior), totals and throughput over the service
lifetime, mirroring how production serving dashboards separate the two.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.adaptive import AdaptationStatus
from repro.serve.cache import CacheStats


@dataclass(frozen=True)
class LayerStatus:
    """Lifecycle state of one served layer at snapshot time."""

    version: int  # live snapshot version requests resolve to
    delta_size: int  # pending delta ops (0 for immutable indexes)
    num_polygons: int  # live polygons (holes excluded)
    compactions: int = 0  # delta merges completed (dynamic indexes only)


@dataclass(frozen=True)
class ShardStatus:
    """One shard of a :class:`~repro.serve.sharded.ShardedJoinService`.

    ``stats`` is the shard worker's own full :class:`ServiceStats`
    snapshot — per-shard latency, cache, layer, and adaptation detail —
    while the merged front-level ``ServiceStats`` aggregates across
    shards.  Polygon counts report the shard plan's two classes
    separately so the aggregation never double-counts a straddler:
    summing ``num_owned`` across shards reproduces the layers' true
    polygon counts, and ``num_borrowed`` is the straddler traffic this
    shard serves for polygons homed elsewhere.
    """

    shard: int  # shard index in [0, num_shards)
    num_owned: int  # polygons homed in this shard (all layers)
    num_borrowed: int  # straddlers referenced here, homed elsewhere
    stats: "ServiceStats"  # the shard's own service snapshot

    @property
    def num_polygons(self) -> int:
        """Polygon-table slots this shard references (owned + borrowed)."""
        return self.num_owned + self.num_borrowed


@dataclass(frozen=True)
class ServiceStats:
    """One immutable snapshot of a running :class:`JoinService`."""

    requests: int  # client-visible operations (lookups + batch joins)
    points: int  # points joined in total (a layer fan-out counts per layer)
    pairs: int  # join pairs emitted in total
    dispatches: int  # vectorized joins executed
    busy_seconds: float  # time spent inside join dispatches
    mean_ms: float  # over the latency window
    p50_ms: float
    p99_ms: float
    throughput_pps: float  # points per busy second, lifetime
    wall_seconds: float  # service start -> snapshot (monotonic)
    throughput_wall_pps: float  # points per wall-clock second, lifetime
    latency_window: int  # configured percentile window capacity
    window_samples: int  # dispatches currently held in the window
    cache: dict[str, CacheStats] = field(default_factory=dict)
    layers: dict[str, LayerStatus] = field(default_factory=dict)
    adaptation: dict[str, AdaptationStatus] = field(default_factory=dict)
    shards: tuple[ShardStatus, ...] = ()  # per-shard detail (sharded serve)
    # Measured geometry replication factor per layer (sharded serve):
    # polygon-geometry copies published per distinct referenced polygon.
    replication: dict[str, float] = field(default_factory=dict)

    @property
    def mean_batch_size(self) -> float:
        if self.dispatches == 0:
            return 0.0
        return self.points / self.dispatches

    @property
    def cache_hit_rate(self) -> float:
        """Point-weighted hit rate aggregated across all layer caches."""
        hits = sum(s.hits for s in self.cache.values())
        requests = sum(s.requests for s in self.cache.values())
        if requests == 0:
            return 0.0
        return hits / requests

    @property
    def live_sth_rate(self) -> float:
        """Point-weighted windowed solely-true-hit rate across layers.

        The live analog of the paper's Table 7 metric: the fraction of
        recently probed points that skipped the refinement phase.  ``1.0``
        when adaptation telemetry is off or no points are in any window.
        """
        points = sum(s.window_points for s in self.adaptation.values())
        if points == 0:
            return 1.0
        weighted = sum(
            s.window_sth_rate * s.window_points
            for s in self.adaptation.values()
        )
        return weighted / points

    @property
    def retrains(self) -> int:
        """Completed adaptation retrains across all layers."""
        return sum(s.retrains_completed for s in self.adaptation.values())

    def to_dict(self) -> dict:
        """JSON-safe nested dict: scalars, derived rates, sub-statuses.

        Recurses into cache/layer/adaptation/shard sub-statuses so
        ``json.dumps(stats.to_dict())`` round-trips without a custom
        encoder; the JSON exporter and bench result printing both build
        on this.
        """
        return {
            "requests": int(self.requests),
            "points": int(self.points),
            "pairs": int(self.pairs),
            "dispatches": int(self.dispatches),
            "busy_seconds": float(self.busy_seconds),
            "mean_ms": float(self.mean_ms),
            "p50_ms": float(self.p50_ms),
            "p99_ms": float(self.p99_ms),
            "throughput_pps": float(self.throughput_pps),
            "wall_seconds": float(self.wall_seconds),
            "throughput_wall_pps": float(self.throughput_wall_pps),
            "latency_window": int(self.latency_window),
            "window_samples": int(self.window_samples),
            "mean_batch_size": float(self.mean_batch_size),
            "cache_hit_rate": float(self.cache_hit_rate),
            "live_sth_rate": float(self.live_sth_rate),
            "retrains": int(self.retrains),
            "cache": {
                name: {
                    "capacity": int(stats.capacity),
                    "size": int(stats.size),
                    "hits": int(stats.hits),
                    "misses": int(stats.misses),
                    "evictions": int(stats.evictions),
                    "requests": int(stats.requests),
                    "hit_rate": float(stats.hit_rate),
                }
                for name, stats in self.cache.items()
            },
            "layers": {
                name: asdict(status) for name, status in self.layers.items()
            },
            "adaptation": {
                name: asdict(status)
                for name, status in self.adaptation.items()
            },
            "shards": [
                {
                    "shard": int(status.shard),
                    "num_polygons": int(status.num_polygons),
                    "num_owned": int(status.num_owned),
                    "num_borrowed": int(status.num_borrowed),
                    "stats": status.stats.to_dict(),
                }
                for status in self.shards
            ],
            "replication": {
                name: float(factor)
                for name, factor in self.replication.items()
            },
        }


class LatencyRecorder:
    """Thread-safe dispatch recorder behind :class:`ServiceStats`."""

    def __init__(self, window: int = 8192):
        if window < 1:
            raise ValueError(f"latency window must be >= 1, got {window}")
        self._samples: deque[float] = deque(maxlen=window)
        self._lock = threading.Lock()
        self._started = time.monotonic()
        self._requests = 0
        self._points = 0
        self._pairs = 0
        self._dispatches = 0
        self._busy_seconds = 0.0

    @property
    def window(self) -> int:
        """Configured window capacity (dispatches held for percentiles)."""
        return self._samples.maxlen or 0

    def record(
        self, *, requests: int, points: int, pairs: int, seconds: float
    ) -> None:
        """Record one dispatch covering ``requests`` client operations."""
        with self._lock:
            self._samples.append(seconds)
            self._requests += requests
            self._points += points
            self._pairs += pairs
            self._dispatches += 1
            self._busy_seconds += seconds

    def snapshot(
        self,
        cache: dict[str, CacheStats] | None = None,
        layers: dict[str, LayerStatus] | None = None,
        adaptation: dict[str, AdaptationStatus] | None = None,
        shards: tuple[ShardStatus, ...] = (),
        replication: dict[str, float] | None = None,
    ) -> ServiceStats:
        # Only the (cheap, C-level) deque copy happens under the lock;
        # the ndarray conversion and percentile scans run outside it, so
        # a snapshot never stalls concurrent record() calls on the hot
        # dispatch path while numpy crunches an 8192-sample window.
        with self._lock:
            window = list(self._samples)
            requests = self._requests
            points = self._points
            pairs = self._pairs
            dispatches = self._dispatches
            busy = self._busy_seconds
        samples = np.asarray(window, dtype=np.float64)
        if samples.size:
            mean_ms = float(samples.mean() * 1e3)
            p50_ms = float(np.percentile(samples, 50) * 1e3)
            p99_ms = float(np.percentile(samples, 99) * 1e3)
        else:
            mean_ms = p50_ms = p99_ms = 0.0
        # Busy-seconds throughput sums per-dispatch durations, so with
        # concurrent dispatch the denominator double-counts overlapped
        # wall time; wall throughput (start -> snapshot) is the honest
        # rate a load generator observes.
        throughput = points / busy if busy > 0 else 0.0
        wall = time.monotonic() - self._started
        throughput_wall = points / wall if wall > 0 else 0.0
        return ServiceStats(
            requests=requests,
            points=points,
            pairs=pairs,
            dispatches=dispatches,
            busy_seconds=busy,
            mean_ms=mean_ms,
            p50_ms=p50_ms,
            p99_ms=p99_ms,
            throughput_pps=throughput,
            wall_seconds=wall,
            throughput_wall_pps=throughput_wall,
            latency_window=self.window,
            window_samples=len(window),
            cache=dict(cache or {}),
            layers=dict(layers or {}),
            adaptation=dict(adaptation or {}),
            shards=tuple(shards),
            replication=dict(replication or {}),
        )
