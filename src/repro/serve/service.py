"""The online join service facade.

:class:`JoinService` turns the offline join kernel into a request-serving
hot path.  It accepts three shapes of work:

* ``lookup``/``submit`` — single-point requests from many client threads,
  coalesced into micro-batches by a :class:`~repro.serve.batching.MicroBatcher`
  and answered with the polygon ids containing the point;
* ``join`` — an explicit point batch, dispatched through the same
  vectorized ``approximate_join``/``accurate_join`` drivers the offline
  evaluation uses (large batches split across a
  :class:`~repro.serve.executor.MorselExecutor`);
* ``join_layers`` — a batch fanned out to several named polygon layers,
  computing the leaf cell ids once and reusing them per layer.

Every dispatch reads its layer through one immutable
:class:`~repro.core.builder.ProbeView` (store, lookup table, polygons and
version captured together), and every probe goes through a hot-cell cache
keyed by ``(layer, version)`` — so results are bit-identical to calling
``PolygonIndex.join`` directly, skewed workloads short-circuit most trie
descents, and a snapshot swap (:meth:`JoinService.swap_layer`) can never
serve an entry cached for a previous version.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from collections.abc import Mapping, Sequence

import numpy as np

from repro.core.adaptive import AdaptationPolicy, AdaptiveController
from repro.core.builder import ProbeView
from repro.core.flat import as_flat_index
from repro.core.joins import JoinResult, accurate_join, approximate_join
from repro.obs import DispatchMeters, Observability
from repro.obs.trace import NULL_TRACER, Tracer
from repro.serve.batching import LookupRequest, MicroBatcher
from repro.serve.cache import (
    CachedCellStore,
    CacheStats,
    HotCellCache,
    key_shift_for_level,
)
from repro.serve.executor import MorselExecutor
from repro.serve.router import JoinableIndex, LayerRouter
from repro.serve.stats import LatencyRecorder, LayerStatus, ServiceStats
from repro.util.timing import Timer

#: The default single-layer name used when a bare index is served.
DEFAULT_LAYER = "default"


class JoinService:
    """An online point-polygon join service over one or more layers.

    Parameters
    ----------
    layers:
        Either a single index (served as layer ``"default"``) or a mapping
        of layer name to index.  Any :class:`JoinableIndex` works — plain
        :class:`PolygonIndex` snapshots and
        :class:`~repro.core.dynamic.DynamicPolygonIndex` instances alike.
    cache_cells:
        Per-layer-version hot-cell LRU capacity in distinct leaf cells
        (0 disables caching).
    max_batch / max_wait_ms:
        Micro-batching knobs: flush when ``max_batch`` lookups are
        pending, or ``max_wait_ms`` after the first one.
    num_threads / morsel_size:
        Batches larger than one morsel are split across a persistent
        morsel executor when ``num_threads > 1``.
    adaptation:
        An :class:`~repro.core.adaptive.AdaptationPolicy` turns on the
        self-tuning loop: refinement telemetry rides the hot-cell cache's
        key computation, and layers whose windowed solely-true-hit rate
        drops below the policy target are retrained on the observed
        traffic in the background and swapped in without downtime.
        ``None`` (default) disables telemetry and retraining entirely.
    latency_window:
        Dispatches held for the percentile window in ``stats()``.
    flat_views:
        Serve eligible layers from flat snapshot buffers: every
        registered ``PolygonIndex`` with an ACT-family store (initial
        layers, ``add_layer``, ``swap_layer``) is converted once via
        :func:`~repro.core.flat.as_flat_index` — same version, same
        results (the parity suite gates this bit-for-bit), but probes
        read contiguous arrays instead of per-entry Python objects.
        Dynamic indexes and custom stores pass through unchanged.
    obs:
        An :class:`~repro.obs.Observability` bundle wires the telemetry
        plane in: dispatches open phase-tracer spans, a metrics registry
        counts points/pairs/PIP tests and feeds per-phase latency
        histograms, and swaps land in the structured event log.  ``None``
        (default) routes every instrumentation point to shared no-ops.
    """

    def __init__(
        self,
        layers: JoinableIndex | Mapping[str, JoinableIndex],
        *,
        default_layer: str | None = None,
        cache_cells: int = 4096,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        num_threads: int = 1,
        morsel_size: int = 1 << 14,
        latency_window: int = 8192,
        adaptation: AdaptationPolicy | None = None,
        flat_views: bool = False,
        obs: Observability | None = None,
    ):
        if not isinstance(layers, Mapping):
            layers = {DEFAULT_LAYER: layers}
        self._flat_views = flat_views
        if flat_views:
            layers = {
                name: as_flat_index(index) for name, index in layers.items()
            }
        self._router = LayerRouter(layers, default=default_layer)
        self._cache_cells = cache_cells
        self._obs = obs
        self._tracer: Tracer = obs.tracer if obs is not None else NULL_TRACER
        self._events = obs.events if obs is not None else None
        self._meters = DispatchMeters(obs.metrics) if obs is not None else None
        self._adaptive = (
            AdaptiveController(
                adaptation,
                swap=self.swap_layer,
                events=self._events,
                metrics=obs.metrics if obs is not None else None,
            )
            if adaptation is not None
            else None
        )
        self._attach_lock = threading.Lock()
        # Caches and cached stores are keyed by (layer, version): a swap or
        # a dynamic-index mutation bumps the version, so stale entries are
        # unreachable by construction rather than by invalidation.
        self._caches: dict[tuple[str, int], HotCellCache] = {}
        self._stores: dict[tuple[str, int], CachedCellStore] = {}
        self._latest_version: dict[str, int] = {}
        for name, index in self._router.items():
            self._attach_view(name, index.probe_view())
        self._recorder = LatencyRecorder(window=latency_window)
        metrics = obs.metrics if obs is not None else None
        self._executor = (
            MorselExecutor(num_threads, morsel_size, metrics=metrics)
            if num_threads > 1
            else None
        )
        self._batcher = MicroBatcher(
            self._flush_lookups,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            metrics=metrics,
        )
        self._closed = False

    def _attach_view(self, name: str, view: ProbeView) -> CachedCellStore:
        """Build the (layer, version) cache pair for one probe view.

        The cache-key shift is stamped from this view's own maximum cell
        level: any mutation that can deepen the indexed cells (a delta
        insert, a training split) bumps the version and re-attaches, so a
        truncated key is always at least as deep as the generation it
        serves (see the key-soundness regression tests in
        ``tests/test_adaptive.py``).
        """
        key = (name, view.version)
        cache = HotCellCache(self._cache_cells)
        key_shift = key_shift_for_level(view.max_cell_level)
        recorder = (
            self._adaptive.sink_for(name, view.lookup_table, key_shift)
            if self._adaptive is not None
            else None
        )
        store = CachedCellStore(
            view.store,
            cache,
            key_shift=key_shift,
            recorder=recorder,
            tracer=self._tracer,
        )
        self._caches[key] = cache
        self._stores[key] = store
        # Retire every generation older than the newest ever attached for
        # this layer — including a pre-swap view a laggard dispatch just
        # re-attached (it keeps working through its own references; only
        # the registry forgets it).  New requests can never reach retired
        # generations again, and exactly one generation per layer remains.
        latest = max(self._latest_version.get(name, 0), view.version)
        self._latest_version[name] = latest
        for stale in [k for k in self._stores if k[0] == name and k[1] < latest]:
            self._stores.pop(stale, None)
            self._caches.pop(stale, None)
        return store

    # ------------------------------------------------------------------
    # Layer management
    # ------------------------------------------------------------------

    def add_layer(self, name: str, index: JoinableIndex) -> None:
        """Register an additional polygon layer on the live service."""
        if self._flat_views:
            index = as_flat_index(index)
        with self._attach_lock:
            self._router.add(name, index)
            view = index.probe_view()
            self._attach_view(name, view)
        if self._events is not None:
            self._events.emit(
                "add_layer", layer=name, version=int(view.version)
            )

    def swap_layer(self, name: str, index: JoinableIndex) -> JoinableIndex:
        """Atomically replace a layer with a newer versioned snapshot.

        Requests in flight keep the snapshot (and cache generation) they
        already resolved; every request arriving after this call sees the
        new version.  Returns the replaced index.
        """
        if self._flat_views:
            index = as_flat_index(index)
        with self._attach_lock:
            previous = self._router.swap(name, index)
            view = index.probe_view()
            self._attach_view(name, view)
        if self._events is not None:
            self._events.emit("swap", layer=name, version=int(view.version))
        return previous

    @property
    def layers(self) -> tuple[str, ...]:
        return self._router.names

    def cache(self, layer: str | None = None) -> HotCellCache:
        """The cache generation of one layer's current probe view.

        Attached on demand (a mutation may have outdated the registry);
        read off the cached store itself, so a concurrent newer attach
        retiring the registry entry mid-call cannot turn this into an
        error.
        """
        name, index = self._router.resolve(layer)
        return self._store_for(name, index.probe_view()).cache

    # ------------------------------------------------------------------
    # Single-point path (micro-batched)
    # ------------------------------------------------------------------

    def submit(
        self,
        lat: float,
        lng: float,
        *,
        layer: str | None = None,
        exact: bool = True,
    ) -> Future:
        """Enqueue a lookup; resolves to the sorted containing polygon ids.

        Defaults to the accurate join, matching
        ``PolygonIndex.containing_polygons``; pass ``exact=False`` for the
        approximate candidate set (ids whose covering cells contain the
        point, within the build-time precision bound).
        """
        self._check_open()
        # Resolve now: fails fast on unknown layers, and canonicalizes
        # layer=None to the default name so both coalesce into one group.
        name, _ = self._router.resolve(layer)
        return self._batcher.submit(
            LookupRequest(lat=float(lat), lng=float(lng), layer=name, exact=exact)
        )

    def _store_for(self, name: str, view: ProbeView) -> CachedCellStore:
        """The layer's cached store for one probe view (attach on demand)."""
        key = (name, view.version)
        store = self._stores.get(key)
        if store is None:
            with self._attach_lock:
                store = self._stores.get(key)
                if store is None:
                    store = self._attach_view(name, view)
        return store

    def lookup(
        self,
        lat: float,
        lng: float,
        *,
        layer: str | None = None,
        exact: bool = True,
    ) -> list[int]:
        """Blocking single-point lookup (rides the micro-batcher).

        Returns the sorted ids of polygons containing the point (accurate
        join by default, like ``PolygonIndex.containing_polygons``).
        """
        return self.submit(lat, lng, layer=layer, exact=exact).result()

    def _flush_lookups(
        self, layer: str | None, exact: bool, requests: Sequence[LookupRequest]
    ) -> None:
        """Answer one coalesced micro-batch with a single vectorized join."""
        name, index = self._router.resolve(layer)
        lats = np.fromiter((r.lat for r in requests), np.float64, len(requests))
        lngs = np.fromiter((r.lng for r in requests), np.float64, len(requests))
        with Timer() as timer:
            with self._tracer.dispatch(
                "dispatch", layer=name, points=len(requests), kind="lookup"
            ):
                cell_ids = index.cell_ids_for(lats, lngs)
                result = self._dispatch(
                    name, index, cell_ids, lats, lngs, exact, materialize=True
                )
                with self._tracer.span("scatter"):
                    per_point: list[list[int]] = [[] for _ in requests]
                    for point, pid in zip(
                        result.pair_points.tolist(),
                        result.pair_polygons.tolist(),
                    ):
                        per_point[point].append(int(pid))
        self._recorder.record(
            requests=len(requests),
            points=len(requests),
            pairs=result.num_pairs,
            seconds=timer.seconds,
        )
        if self._meters is not None:
            self._meters.observe(result, timer.seconds)
        for request, pids in zip(requests, per_point):
            request.future.set_result(sorted(pids))

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def join(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        *,
        layer: str | None = None,
        exact: bool = False,
        materialize: bool = False,
        cell_ids: np.ndarray | None = None,
    ) -> JoinResult:
        """Join a point batch against one layer.

        Identical semantics (and bit-identical counts) to
        ``PolygonIndex.join`` on the same points, with the hot-cell cache
        and morsel parallelism underneath.  ``cell_ids`` lets a caller
        that already computed the points' leaf cell ids (the sharded
        front ships them alongside the coordinates) skip the recompute.
        """
        self._check_open()
        name, index = self._router.resolve(layer)
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        with Timer() as timer:
            with self._tracer.dispatch(
                "dispatch", layer=name, points=len(lats), exact=exact
            ):
                if cell_ids is None:
                    cell_ids = index.cell_ids_for(lats, lngs)
                else:
                    cell_ids = np.asarray(cell_ids, dtype=np.uint64)
                result = self._dispatch(
                    name, index, cell_ids, lats, lngs, exact, materialize
                )
        self._recorder.record(
            requests=1,
            points=len(lats),
            pairs=result.num_pairs,
            seconds=timer.seconds,
        )
        if self._meters is not None:
            self._meters.observe(result, timer.seconds)
        return result

    def join_layers(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        *,
        layers: Sequence[str] | None = None,
        exact: bool = False,
    ) -> dict[str, JoinResult]:
        """Fan a batch out to several layers (``None`` = every layer).

        Leaf cell ids depend only on the coordinates, so they are computed
        once and shared across layers.
        """
        self._check_open()
        routed = self._router.select(layers)
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        cell_ids = None
        results: dict[str, JoinResult] = {}
        for position, (name, index) in enumerate(routed):
            with Timer() as timer:
                with self._tracer.dispatch(
                    "dispatch", layer=name, points=len(lats), exact=exact
                ):
                    if cell_ids is None:
                        cell_ids = index.cell_ids_for(lats, lngs)
                    results[name] = self._dispatch(
                        name, index, cell_ids, lats, lngs, exact,
                        materialize=False,
                    )
            # One client-visible request for the whole fan-out; points
            # count per layer (each layer joins the full batch).
            self._recorder.record(
                requests=1 if position == 0 else 0,
                points=len(lats),
                pairs=results[name].num_pairs,
                seconds=timer.seconds,
            )
            if self._meters is not None:
                self._meters.observe(results[name], timer.seconds)
        return results

    # ------------------------------------------------------------------
    # Dispatch internals
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        name: str,
        index: JoinableIndex,
        cell_ids: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
    ) -> JoinResult:
        # One atomic snapshot for the whole dispatch: store, lookup table,
        # polygons and version always belong to the same index generation,
        # even if the layer is swapped or mutated mid-request.  The cached
        # store is resolved once here so morsel workers share it instead
        # of hitting the registry (and its lock) per chunk.
        view = index.probe_view()
        store = self._store_for(name, view)
        if (
            self._executor is not None
            and len(cell_ids) > self._executor.morsel_size
        ):
            result = self._dispatch_morsels(
                store, view, cell_ids, lats, lngs, exact, materialize
            )
        else:
            result = self._join_chunk(
                store, view, cell_ids, lats, lngs, exact, materialize
            )
        if self._adaptive is not None:
            # The probes above already fed the telemetry through the
            # cached store's recorder; this is only the (cheap) trigger
            # check that may kick off a background retrain.
            self._adaptive.after_dispatch(name, index)
        return result

    def _join_chunk(
        self,
        store: CachedCellStore,
        view: ProbeView,
        cell_ids: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
    ) -> JoinResult:
        """One vectorized join through the layer's cached store.

        The tracer rides along so the kernels can emit ``probe`` /
        ``refine`` child spans from their own timers; on morsel worker
        threads (no active dispatch span) those emits no-op and the
        merged phases are synthesized in :meth:`_dispatch_morsels`.
        """
        if exact:
            return accurate_join(
                store,
                view.lookup_table,
                cell_ids,
                view.polygons,
                lngs,
                lats,
                materialize=materialize,
                engine=view.refiner,
                tracer=self._tracer,
            )
        return approximate_join(
            store,
            view.lookup_table,
            cell_ids,
            len(view.polygons),
            materialize=materialize,
            tracer=self._tracer,
        )

    def _dispatch_morsels(
        self,
        store: CachedCellStore,
        view: ProbeView,
        cell_ids: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
    ) -> JoinResult:
        """Split a large batch into morsels and merge the partial results."""
        def work(lo: int, hi: int) -> JoinResult:
            part = self._join_chunk(
                store,
                view,
                cell_ids[lo:hi],
                lats[lo:hi],
                lngs[lo:hi],
                exact,
                materialize,
            )
            if materialize and part.pair_points is not None:
                part.pair_points = part.pair_points + lo
            return part

        with Timer() as timer:
            parts = self._executor.map_morsels(len(cell_ids), work)
        # Apportion the parallel wall time by the workers' probe/refine
        # ratio so probe_seconds + refine_seconds == elapsed time.
        probe_total = sum(p.probe_seconds for p in parts)
        refine_total = sum(p.refine_seconds for p in parts)
        busy_total = probe_total + refine_total
        refine_wall = (
            timer.seconds * refine_total / busy_total if busy_total > 0 else 0.0
        )
        # Morsel workers run with empty span stacks, so the per-chunk
        # probe/refine spans no-op'd; synthesize the merged phases from
        # the same apportioned wall times the JoinResult reports.
        self._tracer.emit(
            "probe", timer.seconds - refine_wall, morsels=len(parts)
        )
        if refine_wall > 0.0:
            self._tracer.emit("refine", refine_wall, morsels=len(parts))
        with self._tracer.span("merge", morsels=len(parts)):
            merged = JoinResult(
                num_points=len(cell_ids),
                counts=np.sum([p.counts for p in parts], axis=0),
                num_pairs=sum(p.num_pairs for p in parts),
                num_true_hit_pairs=sum(p.num_true_hit_pairs for p in parts),
                num_candidate_pairs=sum(p.num_candidate_pairs for p in parts),
                num_pip_tests=sum(p.num_pip_tests for p in parts),
                solely_true_hits=sum(p.solely_true_hits for p in parts),
                probe_seconds=timer.seconds - refine_wall,
                refine_seconds=refine_wall,
            )
            if materialize:
                merged.pair_points = np.concatenate(
                    [p.pair_points for p in parts]
                )
                merged.pair_polygons = np.concatenate(
                    [p.pair_polygons for p in parts]
                )
        return merged

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    @property
    def adaptation(self) -> AdaptiveController | None:
        """The adaptation controller, or ``None`` when self-tuning is off."""
        return self._adaptive

    @property
    def obs(self) -> Observability | None:
        """The observability bundle, or ``None`` when telemetry is off."""
        return self._obs

    @property
    def tracer(self) -> Tracer:
        """The phase tracer (the shared disabled tracer when ``obs=None``)."""
        return self._tracer

    def stats(self) -> ServiceStats:
        """Immutable snapshot: latency percentiles, throughput, cache,
        each layer's live version and pending delta size, plus the
        adaptation loop's windowed STH rate and retrain counters."""
        with self._attach_lock:  # add/swap may be mutating the dicts
            caches = dict(self._caches)
        # Exactly one generation per layer should remain attached, but if
        # that invariant ever breaks (a laggard dispatch re-attaching a
        # pre-swap view), report the NEWEST version deterministically —
        # never let a stale generation's counters mask the live one just
        # because it was inserted later.
        newest: dict[str, tuple[int, HotCellCache]] = {}
        for (name, version), cache in caches.items():
            held = newest.get(name)
            if held is None or version > held[0]:
                newest[name] = (version, cache)
        cache_stats: dict[str, CacheStats] = {
            name: cache.stats() for name, (_version, cache) in newest.items()
        }
        layer_status: dict[str, LayerStatus] = {}
        for name, index in self._router.items():
            layer_status[name] = LayerStatus(
                version=index.probe_view().version,
                delta_size=int(getattr(index, "delta_size", 0)),
                num_polygons=index.num_polygons,
                compactions=int(getattr(index, "compactions", 0)),
            )
        adaptation = self._adaptive.status() if self._adaptive is not None else {}
        return self._recorder.snapshot(cache_stats, layer_status, adaptation)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def close(self) -> None:
        """Drain pending lookups and release worker threads."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._executor is not None:
            self._executor.close()
        if self._adaptive is not None:
            self._adaptive.close()

    def __enter__(self) -> "JoinService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
