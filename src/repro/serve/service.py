"""The online join service facade.

:class:`JoinService` turns the offline join kernel into a request-serving
hot path.  It accepts three shapes of work:

* ``lookup``/``submit`` — single-point requests from many client threads,
  coalesced into micro-batches by a :class:`~repro.serve.batching.MicroBatcher`
  and answered with the polygon ids containing the point;
* ``join`` — an explicit point batch, dispatched through the same
  vectorized ``approximate_join``/``accurate_join`` drivers the offline
  evaluation uses (large batches split across a
  :class:`~repro.serve.executor.MorselExecutor`);
* ``join_layers`` — a batch fanned out to several named polygon layers,
  computing the leaf cell ids once and reusing them per layer.

Every probe goes through a per-layer
:class:`~repro.serve.cache.HotCellCache`, so results are bit-identical to
calling ``PolygonIndex.join`` directly while skewed workloads
short-circuit most trie descents.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Mapping, Sequence

import numpy as np

from repro.core.builder import PolygonIndex
from repro.core.joins import JoinResult, accurate_join, approximate_join
from repro.serve.batching import LookupRequest, MicroBatcher
from repro.serve.cache import (
    CachedCellStore,
    CacheStats,
    HotCellCache,
    key_shift_for_level,
)
from repro.serve.executor import MorselExecutor
from repro.serve.router import LayerRouter
from repro.serve.stats import LatencyRecorder, ServiceStats
from repro.util.timing import Timer

#: The default single-layer name used when a bare index is served.
DEFAULT_LAYER = "default"


class JoinService:
    """An online point-polygon join service over one or more layers.

    Parameters
    ----------
    layers:
        Either a single :class:`PolygonIndex` (served as layer
        ``"default"``) or a mapping of layer name to index.
    cache_cells:
        Per-layer hot-cell LRU capacity in distinct leaf cells
        (0 disables caching).
    max_batch / max_wait_ms:
        Micro-batching knobs: flush when ``max_batch`` lookups are
        pending, or ``max_wait_ms`` after the first one.
    num_threads / morsel_size:
        Batches larger than one morsel are split across a persistent
        morsel executor when ``num_threads > 1``.
    """

    def __init__(
        self,
        layers: PolygonIndex | Mapping[str, PolygonIndex],
        *,
        default_layer: str | None = None,
        cache_cells: int = 4096,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        num_threads: int = 1,
        morsel_size: int = 1 << 14,
        latency_window: int = 8192,
    ):
        if isinstance(layers, PolygonIndex):
            layers = {DEFAULT_LAYER: layers}
        self._router = LayerRouter(layers, default=default_layer)
        self._cache_cells = cache_cells
        self._attach_lock = threading.Lock()
        self._caches: dict[str, HotCellCache] = {}
        self._stores: dict[str, CachedCellStore] = {}
        for name, index in self._router.items():
            self._attach_cache(name, index)
        self._recorder = LatencyRecorder(window=latency_window)
        self._executor = (
            MorselExecutor(num_threads, morsel_size) if num_threads > 1 else None
        )
        self._batcher = MicroBatcher(
            self._flush_lookups, max_batch=max_batch, max_wait_ms=max_wait_ms
        )
        self._closed = False

    def _attach_cache(self, name: str, index: PolygonIndex) -> None:
        cache = HotCellCache(self._cache_cells)
        self._caches[name] = cache
        # Key the cache on the ancestor at the layer's deepest indexed
        # level — leaf ids sharing it are guaranteed identical probes.
        histogram = index.super_covering.level_histogram()
        max_level = max(histogram) if histogram else 0
        self._stores[name] = CachedCellStore(
            index.store, cache, key_shift=key_shift_for_level(max_level)
        )

    # ------------------------------------------------------------------
    # Layer management
    # ------------------------------------------------------------------

    def add_layer(self, name: str, index: PolygonIndex) -> None:
        """Register an additional polygon layer on the live service."""
        with self._attach_lock:
            self._router.add(name, index)
            self._attach_cache(name, index)

    @property
    def layers(self) -> tuple[str, ...]:
        return self._router.names

    def cache(self, layer: str | None = None) -> HotCellCache:
        name, _ = self._router.resolve(layer)
        return self._caches[name]

    # ------------------------------------------------------------------
    # Single-point path (micro-batched)
    # ------------------------------------------------------------------

    def submit(
        self,
        lat: float,
        lng: float,
        *,
        layer: str | None = None,
        exact: bool = True,
    ) -> Future:
        """Enqueue a lookup; resolves to the sorted containing polygon ids.

        Defaults to the accurate join, matching
        ``PolygonIndex.containing_polygons``; pass ``exact=False`` for the
        approximate candidate set (ids whose covering cells contain the
        point, within the build-time precision bound).
        """
        self._check_open()
        # Resolve now: fails fast on unknown layers, and canonicalizes
        # layer=None to the default name so both coalesce into one group.
        name, _ = self._router.resolve(layer)
        return self._batcher.submit(
            LookupRequest(lat=float(lat), lng=float(lng), layer=name, exact=exact)
        )

    def _store_for(self, name: str, index: PolygonIndex) -> CachedCellStore:
        """The layer's cached store, re-attached if the index was rebuilt.

        ``PolygonIndex.add_polygon`` replaces both the store and the
        lookup table; probing the old store against the new table would
        decode garbage, so a store swap invalidates the cache wholesale.
        """
        cached = self._stores[name]
        if cached.store is not index.store:
            with self._attach_lock:
                cached = self._stores[name]
                if cached.store is not index.store:
                    self._attach_cache(name, index)
                    cached = self._stores[name]
        return cached

    def lookup(
        self,
        lat: float,
        lng: float,
        *,
        layer: str | None = None,
        exact: bool = True,
    ) -> list[int]:
        """Blocking single-point lookup (rides the micro-batcher).

        Returns the sorted ids of polygons containing the point (accurate
        join by default, like ``PolygonIndex.containing_polygons``).
        """
        return self.submit(lat, lng, layer=layer, exact=exact).result()

    def _flush_lookups(
        self, layer: str | None, exact: bool, requests: Sequence[LookupRequest]
    ) -> None:
        """Answer one coalesced micro-batch with a single vectorized join."""
        name, index = self._router.resolve(layer)
        lats = np.fromiter((r.lat for r in requests), np.float64, len(requests))
        lngs = np.fromiter((r.lng for r in requests), np.float64, len(requests))
        with Timer() as timer:
            cell_ids = index.cell_ids_for(lats, lngs)
            result = self._dispatch(
                name, index, cell_ids, lats, lngs, exact, materialize=True
            )
            per_point: list[list[int]] = [[] for _ in requests]
            for point, pid in zip(
                result.pair_points.tolist(), result.pair_polygons.tolist()
            ):
                per_point[point].append(int(pid))
        self._recorder.record(
            requests=len(requests),
            points=len(requests),
            pairs=result.num_pairs,
            seconds=timer.seconds,
        )
        for request, pids in zip(requests, per_point):
            request.future.set_result(sorted(pids))

    # ------------------------------------------------------------------
    # Batch path
    # ------------------------------------------------------------------

    def join(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        *,
        layer: str | None = None,
        exact: bool = False,
        materialize: bool = False,
    ) -> JoinResult:
        """Join a point batch against one layer.

        Identical semantics (and bit-identical counts) to
        ``PolygonIndex.join`` on the same points, with the hot-cell cache
        and morsel parallelism underneath.
        """
        self._check_open()
        name, index = self._router.resolve(layer)
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        with Timer() as timer:
            cell_ids = index.cell_ids_for(lats, lngs)
            result = self._dispatch(
                name, index, cell_ids, lats, lngs, exact, materialize
            )
        self._recorder.record(
            requests=1,
            points=len(lats),
            pairs=result.num_pairs,
            seconds=timer.seconds,
        )
        return result

    def join_layers(
        self,
        lats: np.ndarray,
        lngs: np.ndarray,
        *,
        layers: Sequence[str] | None = None,
        exact: bool = False,
    ) -> dict[str, JoinResult]:
        """Fan a batch out to several layers (``None`` = every layer).

        Leaf cell ids depend only on the coordinates, so they are computed
        once and shared across layers.
        """
        self._check_open()
        routed = self._router.select(layers)
        lats = np.asarray(lats, dtype=np.float64)
        lngs = np.asarray(lngs, dtype=np.float64)
        cell_ids = None
        results: dict[str, JoinResult] = {}
        for position, (name, index) in enumerate(routed):
            with Timer() as timer:
                if cell_ids is None:
                    cell_ids = index.cell_ids_for(lats, lngs)
                results[name] = self._dispatch(
                    name, index, cell_ids, lats, lngs, exact, materialize=False
                )
            # One client-visible request for the whole fan-out; points
            # count per layer (each layer joins the full batch).
            self._recorder.record(
                requests=1 if position == 0 else 0,
                points=len(lats),
                pairs=results[name].num_pairs,
                seconds=timer.seconds,
            )
        return results

    # ------------------------------------------------------------------
    # Dispatch internals
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        name: str,
        index: PolygonIndex,
        cell_ids: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
    ) -> JoinResult:
        if (
            self._executor is not None
            and len(cell_ids) > self._executor.morsel_size
        ):
            return self._dispatch_morsels(
                name, index, cell_ids, lats, lngs, exact, materialize
            )
        return self._join_chunk(
            name, index, cell_ids, lats, lngs, exact, materialize
        )

    def _join_chunk(
        self,
        name: str,
        index: PolygonIndex,
        cell_ids: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
    ) -> JoinResult:
        """One vectorized join through the layer's cached store."""
        store = self._store_for(name, index)
        # Read the table through the store (attribute passthrough): the
        # pair travels together, so even if add_polygon swaps both fields
        # on the index mid-request we never mix an old store with a new
        # table — worst case one batch is served from the pre-update pair.
        lookup_table = getattr(store, "lookup_table", None)
        if lookup_table is None:
            lookup_table = index.lookup_table
        if exact:
            return accurate_join(
                store,
                lookup_table,
                cell_ids,
                index.polygons,
                lngs,
                lats,
                materialize=materialize,
            )
        return approximate_join(
            store,
            lookup_table,
            cell_ids,
            len(index.polygons),
            materialize=materialize,
        )

    def _dispatch_morsels(
        self,
        name: str,
        index: PolygonIndex,
        cell_ids: np.ndarray,
        lats: np.ndarray,
        lngs: np.ndarray,
        exact: bool,
        materialize: bool,
    ) -> JoinResult:
        """Split a large batch into morsels and merge the partial results."""
        def work(lo: int, hi: int) -> JoinResult:
            part = self._join_chunk(
                name,
                index,
                cell_ids[lo:hi],
                lats[lo:hi],
                lngs[lo:hi],
                exact,
                materialize,
            )
            if materialize and part.pair_points is not None:
                part.pair_points = part.pair_points + lo
            return part

        with Timer() as timer:
            parts = self._executor.map_morsels(len(cell_ids), work)
        # Apportion the parallel wall time by the workers' probe/refine
        # ratio so probe_seconds + refine_seconds == elapsed time.
        probe_total = sum(p.probe_seconds for p in parts)
        refine_total = sum(p.refine_seconds for p in parts)
        busy_total = probe_total + refine_total
        refine_wall = (
            timer.seconds * refine_total / busy_total if busy_total > 0 else 0.0
        )
        merged = JoinResult(
            num_points=len(cell_ids),
            counts=np.sum([p.counts for p in parts], axis=0),
            num_pairs=sum(p.num_pairs for p in parts),
            num_true_hit_pairs=sum(p.num_true_hit_pairs for p in parts),
            num_candidate_pairs=sum(p.num_candidate_pairs for p in parts),
            num_pip_tests=sum(p.num_pip_tests for p in parts),
            solely_true_hits=sum(p.solely_true_hits for p in parts),
            probe_seconds=timer.seconds - refine_wall,
            refine_seconds=refine_wall,
        )
        if materialize:
            merged.pair_points = np.concatenate(
                [p.pair_points for p in parts]
            )
            merged.pair_polygons = np.concatenate(
                [p.pair_polygons for p in parts]
            )
        return merged

    # ------------------------------------------------------------------
    # Observability & lifecycle
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Immutable snapshot: latency percentiles, throughput, cache."""
        with self._attach_lock:  # add_layer may be mutating the dict
            caches = dict(self._caches)
        cache_stats: dict[str, CacheStats] = {
            name: cache.stats() for name, cache in caches.items()
        }
        return self._recorder.snapshot(cache_stats)

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    def close(self) -> None:
        """Drain pending lookups and release worker threads."""
        if self._closed:
            return
        self._closed = True
        self._batcher.close()
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "JoinService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
