"""Morsel-driven parallel execution for large serving batches.

Reuses the scheme of :func:`repro.core.joins.parallel_count_join` — worker
threads pull fixed-size morsels from a shared atomic counter and keep
thread-local results, merged by the caller — but with a *persistent*
thread pool, because a service dispatching thousands of batches per second
cannot afford to spawn threads per request the way the one-shot benchmark
driver does.
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable
from typing import TypeVar

T = TypeVar("T")


class MorselExecutor:
    """A persistent pool executing ``work(lo, hi)`` over morsel ranges.

    The shared ``itertools.count`` hand-out is the paper's atomic batch
    counter (Section 3.4): whichever worker finishes first grabs the next
    morsel, so skewed morsels (a hot cell making one range expensive)
    balance automatically.
    """

    def __init__(self, num_threads: int, morsel_size: int = 1 << 14,
                 metrics=None):
        if num_threads < 1:
            raise ValueError(f"num_threads must be >= 1, got {num_threads}")
        if morsel_size < 1:
            raise ValueError(f"morsel_size must be >= 1, got {morsel_size}")
        self.num_threads = num_threads
        self.morsel_size = morsel_size
        self._pool = ThreadPoolExecutor(
            max_workers=num_threads, thread_name_prefix="repro-serve"
        )
        self._morsel_hist = (
            metrics.histogram(
                "serve_morsels_per_dispatch",
                "morsel ranges a parallel dispatch split into",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            )
            if metrics is not None
            else None
        )

    def map_morsels(
        self, num_items: int, work: Callable[[int, int], T]
    ) -> list[T]:
        """Run ``work(lo, hi)`` for every morsel range; results in order.

        Fails fast: the first worker whose ``work`` raises sets a shared
        flag, so the other workers stop claiming morsels instead of
        grinding through the rest of a batch whose result is already
        doomed.  The first exception (in failure order) is re-raised.
        """
        num_morsels = (num_items + self.morsel_size - 1) // self.morsel_size
        if self._morsel_hist is not None and num_morsels:
            self._morsel_hist.observe(num_morsels)
        if num_morsels <= 1:
            return [work(0, num_items)] if num_items else []
        counter = itertools.count()  # the shared atomic morsel counter
        results: list[T | None] = [None] * num_morsels
        failed = threading.Event()
        errors: list[BaseException] = []
        errors_lock = threading.Lock()

        def worker() -> None:
            while not failed.is_set():
                morsel = next(counter)
                if morsel >= num_morsels:
                    return
                lo = morsel * self.morsel_size
                hi = min(lo + self.morsel_size, num_items)
                try:
                    results[morsel] = work(lo, hi)
                except BaseException as exc:
                    with errors_lock:
                        errors.append(exc)
                    failed.set()
                    return

        futures = [
            self._pool.submit(worker)
            for _ in range(min(self.num_threads, num_morsels))
        ]
        for future in futures:
            future.result()
        if errors:
            raise errors[0]
        return results  # type: ignore[return-value]

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "MorselExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
