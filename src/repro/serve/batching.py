"""Micro-batching: coalesce concurrent single-point lookups.

One-point-at-a-time joins waste the vectorized kernel — every numpy call
pays its fixed dispatch cost for a single element.  The batcher collects
lookups arriving from many client threads into micro-batches (up to
``max_batch`` requests, waiting at most ``max_wait_ms`` after the first
one) and hands each batch to a flush callback that runs ONE vectorized
join and scatters per-point results back through futures.  This is the
serving-side analog of the paper's batched probe phase: throughput comes
from amortizing per-call overhead across the batch.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence


@dataclass
class LookupRequest:
    """One pending single-point lookup."""

    lat: float
    lng: float
    layer: str | None = None
    exact: bool = False
    future: Future = field(default_factory=Future)
    enqueued_at: float = 0.0  # stamped by MicroBatcher.submit


#: Flush callback: run one vectorized join for requests sharing a
#: ``(layer, exact)`` route and resolve each request's future.
FlushFn = Callable[[str | None, bool, Sequence[LookupRequest]], None]


class MicroBatcher:
    """Background coalescer turning a request stream into micro-batches."""

    def __init__(
        self,
        flush: FlushFn,
        *,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        metrics=None,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._flush = flush
        self.max_batch = max_batch
        self.max_wait_seconds = max_wait_ms / 1000.0
        self._queue: deque[LookupRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._batches_dispatched = 0
        self._requests_dispatched = 0
        if metrics is not None:
            self._depth_gauge = metrics.gauge(
                "serve_queue_depth", "pending single-point lookups"
            )
            self._batch_hist = metrics.histogram(
                "serve_batch_size",
                "requests per coalesced micro-batch",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048),
            )
        else:
            self._depth_gauge = None
            self._batch_hist = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-batcher", daemon=True
        )
        self._thread.start()

    def submit(self, request: LookupRequest) -> Future:
        """Enqueue a lookup; the returned future resolves to its result."""
        request.enqueued_at = time.monotonic()
        with self._cond:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._queue.append(request)
            if self._depth_gauge is not None:
                self._depth_gauge.set(len(self._queue))
            self._cond.notify()
        return request.future

    @property
    def batches_dispatched(self) -> int:
        return self._batches_dispatched

    @property
    def mean_batch_size(self) -> float:
        if self._batches_dispatched == 0:
            return 0.0
        return self._requests_dispatched / self._batches_dispatched

    def close(self) -> None:
        """Stop accepting requests, drain the queue, join the thread."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join()

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue and self._closed:
                    return
                # Linger briefly so concurrent callers coalesce, but never
                # past the latency budget of the OLDEST pending request —
                # requests that queued up during a slow flush have already
                # used (part of) theirs.
                deadline = self._queue[0].enqueued_at + self.max_wait_seconds
                while len(self._queue) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cond.wait(remaining)
                batch = [
                    self._queue.popleft()
                    for _ in range(min(self.max_batch, len(self._queue)))
                ]
                if self._depth_gauge is not None:
                    self._depth_gauge.set(len(self._queue))
            if batch:
                self._dispatch(batch)

    def _dispatch(self, batch: list[LookupRequest]) -> None:
        # Group by route so each group runs as one vectorized join.
        groups: dict[tuple[str | None, bool], list[LookupRequest]] = {}
        for request in batch:
            groups.setdefault((request.layer, request.exact), []).append(request)
        for (layer, exact), requests in groups.items():
            # Transition futures to RUNNING; drops client-cancelled ones
            # and guarantees cancel() can no longer race set_result below.
            live = [
                request
                for request in requests
                if request.future.set_running_or_notify_cancel()
            ]
            if not live:
                continue
            self._batches_dispatched += 1
            self._requests_dispatched += len(live)
            if self._batch_hist is not None:
                self._batch_hist.observe(len(live))
            try:
                self._flush(layer, exact, live)
            except BaseException as exc:  # propagate to every waiting caller
                for request in live:
                    if not request.future.done():
                        request.future.set_exception(exc)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
