"""Online serving layer: request streams over the offline join kernel.

The ``repro.serve`` subsystem wraps the core index into a service whose
unit of work is a *request stream* rather than a point array:

* :class:`JoinService` — the facade: single lookups, point batches, and
  multi-layer fan-out, all dispatched through the vectorized join drivers;
* :class:`MicroBatcher` — coalesces concurrent single-point lookups into
  micro-batches (the serving analog of the paper's batched probe phase);
* :class:`HotCellCache` / :class:`CachedCellStore` — an LRU over leaf-cell
  probe results that short-circuits skewed (fig9-style) workloads;
* :class:`LayerRouter` — several named polygon layers behind one service;
* :class:`MorselExecutor` — persistent-pool morsel parallelism for large
  batches;
* :class:`ShardedJoinService` / :class:`ShardPlan` — share-nothing
  multi-process sharding by Hilbert cell-id range: one worker process
  (and one ``JoinService``) per spatial partition, batches scattered
  through shared memory and merged bit-identically;
* :class:`ServiceStats` — p50/p99 latency, throughput, cache hit-rate,
  adaptation-loop snapshots, and per-shard detail;
* adaptation — pass an :class:`~repro.core.adaptive.AdaptationPolicy` to
  :class:`JoinService` and layers retrain themselves on observed traffic
  when their windowed solely-true-hit rate drifts below target.

Quickstart::

    from repro import JoinService, PolygonIndex

    service = JoinService(PolygonIndex.build(zones, precision_meters=4.0))
    zone_ids = service.lookup(40.72, -74.0)
"""

from repro.core.adaptive import (
    AdaptationPolicy,
    AdaptationStatus,
    AdaptiveController,
)
from repro.serve.batching import LookupRequest, MicroBatcher
from repro.serve.cache import CachedCellStore, CacheStats, HotCellCache
from repro.serve.executor import MorselExecutor
from repro.serve.router import JoinableIndex, LayerRouter
from repro.serve.service import JoinService
from repro.serve.sharded import ShardedJoinService, ShardPlan, ShardWorkerError
from repro.serve.stats import (
    LatencyRecorder,
    LayerStatus,
    ServiceStats,
    ShardStatus,
)

__all__ = [
    "AdaptationPolicy",
    "AdaptationStatus",
    "AdaptiveController",
    "CachedCellStore",
    "CacheStats",
    "HotCellCache",
    "JoinableIndex",
    "JoinService",
    "LatencyRecorder",
    "LayerRouter",
    "LayerStatus",
    "LookupRequest",
    "MicroBatcher",
    "MorselExecutor",
    "ServiceStats",
    "ShardPlan",
    "ShardStatus",
    "ShardWorkerError",
    "ShardedJoinService",
]
