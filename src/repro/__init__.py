"""repro — Adaptive main-memory indexing for high-performance point-polygon joins.

A from-scratch Python reproduction of Kipf et al., EDBT 2020: the Adaptive
Cell Trie (ACT) polygon index, the approximate join with a user-defined
precision bound, the accurate join with index training, all substrates
(an S2-style hierarchical cell grid, a planar geometry kernel), and every
baseline of the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import PolygonIndex, Polygon

    zones = [Polygon([(-74.02, 40.70), (-73.98, 40.70),
                      (-73.98, 40.74), (-74.02, 40.74)])]
    index = PolygonIndex.build(zones, precision_meters=4.0)
    result = index.join(np.array([40.72]), np.array([-74.0]))
    print(result.counts)          # points per polygon

Online serving (micro-batching, hot-cell caching, multi-layer routing)::

    from repro import JoinService

    service = JoinService(index)
    zone_ids = service.lookup(40.72, -74.0)

See DESIGN.md for the architecture and layer diagram.
"""

from repro.cells import CellId, LatLng, cell_ids_from_lat_lng_arrays
from repro.cells.coverer import CovererOptions, RegionCoverer
from repro.core import (
    AdaptationPolicy,
    AdaptationStatus,
    AdaptiveCellTrie,
    CompressedCellTrie,
    DynamicPolygonIndex,
    FlatPolygonIndex,
    FlatSnapshot,
    JoinResult,
    LookupTable,
    PolygonIndex,
    PolygonRef,
    SuperCovering,
    accurate_join,
    approximate_join,
    as_flat_index,
    build_super_covering,
    load_index,
    refine_to_precision,
    save_index,
    train_super_covering,
)
from repro.geo import Polygon, Rect, Ring, polygon_from_wkt, polygon_to_wkt
from repro.obs import (
    EventLog,
    MetricsRegistry,
    Observability,
    Tracer,
    render_prometheus,
    stats_json,
)
from repro.serve import (
    HotCellCache,
    JoinableIndex,
    JoinService,
    LayerRouter,
    LayerStatus,
    ServiceStats,
)

__version__ = "1.8.0"

__all__ = [
    "CellId",
    "LatLng",
    "cell_ids_from_lat_lng_arrays",
    "CovererOptions",
    "RegionCoverer",
    "AdaptationPolicy",
    "AdaptationStatus",
    "AdaptiveCellTrie",
    "CompressedCellTrie",
    "FlatPolygonIndex",
    "FlatSnapshot",
    "as_flat_index",
    "JoinResult",
    "LookupTable",
    "PolygonIndex",
    "PolygonRef",
    "SuperCovering",
    "accurate_join",
    "approximate_join",
    "build_super_covering",
    "load_index",
    "refine_to_precision",
    "save_index",
    "train_super_covering",
    "Polygon",
    "Rect",
    "Ring",
    "polygon_from_wkt",
    "polygon_to_wkt",
    "DynamicPolygonIndex",
    "EventLog",
    "MetricsRegistry",
    "Observability",
    "Tracer",
    "render_prometheus",
    "stats_json",
    "HotCellCache",
    "JoinableIndex",
    "JoinService",
    "LayerRouter",
    "LayerStatus",
    "ServiceStats",
    "__version__",
]
