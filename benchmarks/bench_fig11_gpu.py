"""Figure 11 kernels: ACT4 versus the raster-join GPU substitutes."""

import os

import pytest

from repro.baselines import RasterJoin
from repro.core.joins import parallel_count_join


@pytest.mark.parametrize("precision", [60.0, 15.0])
def test_act4_parallel(benchmark, workbench, taxi, precision):
    _, _, ids = taxi
    threads = min(16, os.cpu_count() or 1)
    store = workbench.store("neighborhoods", precision, "ACT4")
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(
        parallel_count_join, store, store.lookup_table, ids, num_polygons, threads
    )
    benchmark.extra_info["threads"] = threads


@pytest.mark.parametrize("precision", [60.0, 15.0])
def test_brj(benchmark, workbench, taxi, neighborhoods, precision):
    lats, lngs, _ = taxi
    raster = RasterJoin(
        neighborhoods,
        precision_meters=precision,
        max_texture=workbench.config.max_texture,
    )
    benchmark(raster.join, lngs, lats)
    benchmark.extra_info["passes"] = raster.num_passes
    benchmark.extra_info["grid"] = f"{raster.width}x{raster.height}"


def test_arj(benchmark, workbench, taxi, neighborhoods):
    lats, lngs, _ = taxi
    raster = RasterJoin(
        neighborhoods,
        precision_meters=None,
        max_texture=workbench.config.max_texture,
    )
    result = benchmark(raster.join, lngs, lats)
    benchmark.extra_info["pip_per_point"] = round(result.num_pip_tests / len(lngs), 4)
