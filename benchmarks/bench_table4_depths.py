"""Table 4 kernel: the instrumented probe that records traversal depths."""

import pytest


@pytest.mark.parametrize("points_kind", ["uniform", "taxi"])
def test_instrumented_probe(benchmark, workbench, points_kind):
    precision = min(workbench.config.precisions)
    store = workbench.store("neighborhoods", precision, "ACT4")
    if points_kind == "uniform":
        _, _, ids = workbench.uniform("neighborhoods")
    else:
        _, _, ids = workbench.taxi()
    _, stats = benchmark(store.probe_instrumented, ids)
    benchmark.extra_info["avg_depth"] = round(stats.avg_depth, 2)
    benchmark.extra_info["depth_histogram"] = {
        k: round(v, 3) for k, v in stats.depth_histogram().items()
    }
