"""Shared fixtures for the pytest-benchmark suite.

Every benchmark file regenerates the probe/build kernel of one table or
figure of the paper at smoke scale (so ``pytest benchmarks/
--benchmark-only`` completes in minutes); the full-scale numbers live in
EXPERIMENTS.md and are produced by ``python -m repro.bench all``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.config import BenchConfig
from repro.bench.workbench import Workbench


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    config = BenchConfig(
        taxi_points=120_000,
        uniform_points=60_000,
        twitter_nyc_points=60_000,
        precisions=(60.0, 15.0),
        census_polygons=400,
        threads=(1, 2),
        training_points=(20_000,),
        slow_baseline_points=20_000,
        max_texture=512,
    )
    return Workbench(config)


@pytest.fixture(scope="session")
def taxi(workbench):
    return workbench.taxi()


@pytest.fixture(scope="session")
def neighborhoods(workbench):
    return workbench.polygons("neighborhoods")
