"""Figure 9 kernel: Twitter-analog city workloads (clustered points joined
with neighborhood polygons of the paper's per-city counts)."""

import pytest

from repro.core.joins import approximate_join


@pytest.mark.parametrize("city", ["BOS", "NYC"])
@pytest.mark.parametrize("precision", [60.0, 15.0])
def test_twitter_city_probe(benchmark, workbench, city, precision):
    dataset = f"twitter:{city}"
    store = workbench.store(dataset, precision, "ACT4")
    _, _, ids = workbench.twitter(city)
    num_polygons = len(workbench.polygons(dataset))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
    benchmark.extra_info["city"] = city
    benchmark.extra_info["num_polygons"] = num_polygons
    benchmark.extra_info["num_points"] = len(ids)
