"""Figure 8 kernel: probe throughput with uniform synthetic points.

Uniform points hit large root-level cells more often (shallow traversals)
but with worse cache behaviour — the paper measures a slowdown versus the
clustered taxi data."""

import pytest

from repro.core.joins import approximate_join


@pytest.mark.parametrize("dataset", ["boroughs", "neighborhoods", "census"])
def test_uniform_probe(benchmark, workbench, dataset):
    precision = min(workbench.config.precisions)
    store = workbench.store(dataset, precision, "ACT4")
    _, _, ids = workbench.uniform(dataset)
    num_polygons = len(workbench.polygons(dataset))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
    benchmark.extra_info["mpts"] = round(len(ids) / benchmark.stats["mean"] / 1e6, 2)
