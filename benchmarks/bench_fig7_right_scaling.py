"""Figure 7 (right) kernel: multi-threaded probe scaling (neighborhoods)."""

import os

import pytest

from repro.core.joins import parallel_count_join


@pytest.mark.parametrize("threads", [1, 2])
def test_parallel_probe(benchmark, workbench, taxi, threads):
    if threads > (os.cpu_count() or 1):
        pytest.skip("not enough hardware threads")
    _, _, ids = taxi
    precision = min(workbench.config.precisions)
    store = workbench.store("neighborhoods", precision, "ACT4")
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(
        parallel_count_join,
        store,
        store.lookup_table,
        ids,
        num_polygons,
        threads,
    )
    benchmark.extra_info["threads"] = threads
    benchmark.extra_info["hardware_threads"] = os.cpu_count()
