"""Table 3 kernel: probe cost across polygon datasets per structure.

Comparing the boroughs/census timings of each parametrized case yields the
speedup ratios of Table 3 (ACT benefits most from coarse datasets because
large cells sit near its root)."""

import pytest

from repro.core.joins import approximate_join


@pytest.mark.parametrize("dataset", ["boroughs", "census"])
@pytest.mark.parametrize("kind", ["ACT1", "ACT4", "GBT", "LB"])
def test_dataset_granularity_cost(benchmark, workbench, taxi, dataset, kind):
    _, _, ids = taxi
    precision = min(workbench.config.precisions)
    store = workbench.store(dataset, precision, kind)
    num_polygons = len(workbench.polygons(dataset))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
