"""Table 5 kernel: per-point probe cost, uniform vs taxi points.

The benchmark's ns/op stands in for the paper's cycle counts; the
structural counters are attached as extra info."""

import pytest

from repro.bench.table5 import _structural_counters
from repro.bench.workbench import STORE_FACTORIES
from repro.core.joins import approximate_join


@pytest.mark.parametrize("points_kind", ["uniform", "taxi"])
@pytest.mark.parametrize("kind", list(STORE_FACTORIES))
def test_per_point_cost(benchmark, workbench, points_kind, kind):
    precision = min(workbench.config.precisions)
    store = workbench.store("neighborhoods", precision, kind)
    if points_kind == "uniform":
        _, _, ids = workbench.uniform("neighborhoods")
    else:
        _, _, ids = workbench.taxi()
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
    accesses, comparisons, lines = _structural_counters(store, ids)
    benchmark.extra_info["node_accesses"] = round(accesses, 2)
    benchmark.extra_info["key_comparisons"] = round(comparisons, 2)
    benchmark.extra_info["cache_lines"] = round(lines, 2)
    benchmark.extra_info["ns_per_point"] = round(
        benchmark.stats["mean"] / len(ids) * 1e9, 1
    )
