"""Figure 10 kernels: the accurate join — ACT (true hit filtering + PIP
refinement) versus S2ShapeIndex-analog, R-tree, and PostGIS-analog."""

import pytest

from repro.baselines import GiSTIndex, RTree, ShapeIndex
from repro.core.joins import accurate_join


def test_act4_accurate(benchmark, workbench, taxi, neighborhoods):
    lats, lngs, ids = taxi
    store = workbench.store("neighborhoods", None, "ACT4")
    result = benchmark(
        accurate_join, store, store.lookup_table, ids, neighborhoods, lngs, lats
    )
    benchmark.extra_info["pip_per_point"] = round(result.num_pip_tests / len(ids), 4)
    benchmark.extra_info["sth"] = round(result.sth_rate, 4)


@pytest.mark.parametrize("max_edges", [1, 10], ids=["SI1", "SI10"])
def test_shape_index_accurate(benchmark, workbench, taxi, neighborhoods, max_edges):
    lats, lngs, ids = taxi
    index = ShapeIndex(neighborhoods, max_edges_per_cell=max_edges, max_level=17)
    result = benchmark(index.join, ids, lngs, lats)
    benchmark.extra_info["cells"] = index.num_cells
    benchmark.extra_info["edge_tests_per_point"] = round(
        result.num_pip_tests / len(ids), 4
    )


@pytest.mark.parametrize("factory", [RTree, GiSTIndex], ids=["RT", "PG"])
def test_filter_refine_accurate(benchmark, workbench, taxi, neighborhoods, factory):
    lats, lngs, _ = taxi
    limit = workbench.config.slow_baseline_points
    tree = factory(neighborhoods)
    result = benchmark(tree.join, lngs[:limit], lats[:limit])
    benchmark.extra_info["pip_per_point"] = round(result.num_pip_tests / limit, 4)
