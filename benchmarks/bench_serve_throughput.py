"""Serving kernel: micro-batched dispatch through the JoinService vs.
one-point-at-a-time submission, on a skewed (fig9-style) check-in stream."""

import pytest

from repro.bench.serve_bench import SERVE_PRECISION, _service_index
from repro.datasets import venue_points
from repro.serve import JoinService

NUM_REQUESTS = 30_000


@pytest.fixture(scope="module")
def serve_index(workbench):
    return _service_index(workbench)


@pytest.fixture(scope="module")
def venue_stream():
    return venue_points(NUM_REQUESTS, num_venues=1000)


# Function-scoped: a fresh service per measured configuration, so the
# reported hit rates are comparable across rows.
@pytest.fixture()
def service(serve_index):
    with JoinService(serve_index, cache_cells=4096) as svc:
        yield svc


@pytest.mark.parametrize("batch_size", [256, 4096])
def test_micro_batched_join(benchmark, service, venue_stream, batch_size):
    lats, lngs = venue_stream

    def dispatch():
        # Clear per round so the reported hit rate is the deterministic
        # single-pass (cold-start) rate, independent of how many warmup
        # rounds pytest-benchmark decides to run.
        service.cache().clear()
        for lo in range(0, NUM_REQUESTS, batch_size):
            service.join(lats[lo : lo + batch_size], lngs[lo : lo + batch_size])

    benchmark(dispatch)
    stats = service.stats()
    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["cache_hit_rate"] = round(stats.cache_hit_rate, 4)
    benchmark.extra_info["requests"] = NUM_REQUESTS


def test_one_at_a_time_join(benchmark, serve_index, venue_stream):
    lats, lngs = venue_stream
    num_lookups = 200

    def dispatch():
        for i in range(num_lookups):
            serve_index.join(lats[i : i + 1], lngs[i : i + 1])

    benchmark(dispatch)
    benchmark.extra_info["requests"] = num_lookups
    benchmark.extra_info["precision_m"] = SERVE_PRECISION
