"""Ablation: probe batch size for the multi-threaded join.

The paper's threads fetch 16 tuples per batch (C++ granularity); numpy
needs larger batches to amortize kernel launches.  This bench locates the
plateau."""

import pytest

from repro.core.joins import parallel_count_join


@pytest.mark.parametrize("batch_size", [1 << 12, 1 << 14, 1 << 16, 1 << 18])
def test_batch_size(benchmark, workbench, taxi, batch_size):
    _, _, ids = taxi
    precision = min(workbench.config.precisions)
    store = workbench.store("neighborhoods", precision, "ACT4")
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(
        parallel_count_join,
        store,
        store.lookup_table,
        ids,
        num_polygons,
        2,
        batch_size=batch_size,
    )
    benchmark.extra_info["batch_size"] = batch_size
