"""Ablation: ART-style Node4 compressed nodes vs plain ACT.

The paper considered and rejected adaptive node sizes; this bench
reproduces the measurement behind that decision (probe slowdown from node
type dispatch vs modest memory savings)."""

import pytest

from repro.core.act import AdaptiveCellTrie
from repro.core.act_compressed import CompressedCellTrie
from repro.core.joins import approximate_join
from repro.core.lookup_table import LookupTable


@pytest.mark.parametrize(
    "factory", [AdaptiveCellTrie, CompressedCellTrie], ids=["ACT4", "ACT4+Node4"]
)
def test_node_type_ablation(benchmark, workbench, taxi, factory):
    _, _, ids = taxi
    precision = min(workbench.config.precisions)
    covering, _ = workbench.super_covering("neighborhoods", precision)
    store = factory(covering, 8, LookupTable())
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
    benchmark.extra_info["size_mib"] = round(store.size_bytes / 2**20, 2)
    if isinstance(store, CompressedCellTrie):
        benchmark.extra_info["num_node4"] = store.num_node4
        benchmark.extra_info["num_full_nodes"] = store.num_full_nodes
