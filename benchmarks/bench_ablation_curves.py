"""Ablation: Hilbert vs Morton enumeration (Section 2's curve independence).

Both curves satisfy the prefix property ACT needs; they differ in point
*conversion* cost (table walk vs bit interleave) and in the locality of
probe access patterns on clustered data."""

import pytest

from repro.cells.curves import (
    morton_cell_ids_from_lat_lng_arrays,
    reencode_super_covering_morton,
)
from repro.cells.vectorized import cell_ids_from_lat_lng_arrays
from repro.core.act import AdaptiveCellTrie
from repro.core.joins import approximate_join
from repro.core.lookup_table import LookupTable


@pytest.mark.parametrize(
    "converter",
    [cell_ids_from_lat_lng_arrays, morton_cell_ids_from_lat_lng_arrays],
    ids=["hilbert", "morton"],
)
def test_point_conversion(benchmark, workbench, taxi, converter):
    lats, lngs, _ = taxi
    ids = benchmark(converter, lats, lngs)
    assert len(ids) == len(lats)


@pytest.mark.parametrize("curve", ["hilbert", "morton"])
def test_probe_by_curve(benchmark, workbench, taxi, curve):
    lats, lngs, hilbert_ids = taxi
    precision = min(workbench.config.precisions)
    covering, _ = workbench.super_covering("neighborhoods", precision)
    if curve == "hilbert":
        ids = hilbert_ids
    else:
        covering = reencode_super_covering_morton(covering)
        ids = morton_cell_ids_from_lat_lng_arrays(lats, lngs)
    store = AdaptiveCellTrie(covering, 8, LookupTable())
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
