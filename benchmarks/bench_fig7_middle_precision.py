"""Figure 7 (middle) kernel: probe throughput across precisions
(neighborhoods).  The paper's claim: ACT4 is nearly precision-insensitive
while GBT/LB degrade with the larger cell count."""

import pytest

from repro.core.joins import approximate_join


@pytest.mark.parametrize("precision", [60.0, 15.0])
@pytest.mark.parametrize("kind", ["ACT1", "ACT4", "GBT", "LB"])
def test_probe_across_precisions(benchmark, workbench, taxi, precision, kind):
    _, _, ids = taxi
    store = workbench.store("neighborhoods", precision, kind)
    num_polygons = len(workbench.polygons("neighborhoods"))
    benchmark(approximate_join, store, store.lookup_table, ids, num_polygons)
    covering, _ = workbench.super_covering("neighborhoods", precision)
    benchmark.extra_info["num_cells"] = covering.num_cells
