"""Figure 7 (left) kernel: single-threaded probe throughput per structure
(taxi-analog points, finest configured precision)."""

import pytest

from repro.bench.workbench import STORE_FACTORIES
from repro.core.joins import approximate_join


@pytest.mark.parametrize("dataset", ["boroughs", "neighborhoods", "census"])
@pytest.mark.parametrize("kind", list(STORE_FACTORIES))
def test_probe_throughput(benchmark, workbench, taxi, dataset, kind):
    _, _, ids = taxi
    precision = min(workbench.config.precisions)
    store = workbench.store(dataset, precision, kind)
    num_polygons = len(workbench.polygons(dataset))
    result = benchmark(
        approximate_join, store, store.lookup_table, ids, num_polygons
    )
    benchmark.extra_info["mpts"] = round(
        len(ids) / benchmark.stats["mean"] / 1e6, 2
    )
    benchmark.extra_info["pairs"] = result.num_pairs
