"""Table 7 kernel: the solely-true-hits computation before/after training."""

import pytest

from repro.bench.workbench import _clone_covering
from repro.cells.vectorized import cell_ids_from_lat_lng_arrays
from repro.core.training import solely_true_hit_rate, train_super_covering
from repro.datasets import taxi_points


def test_sth_untrained(benchmark, workbench, taxi):
    _, _, ids = taxi
    base, _ = workbench.base_covering("neighborhoods")
    rate = benchmark(solely_true_hit_rate, base, ids)
    benchmark.extra_info["sth_pct"] = round(rate * 100.0, 1)


def test_sth_trained(benchmark, workbench, taxi, neighborhoods):
    _, _, ids = taxi
    base, _ = workbench.base_covering("neighborhoods")
    covering = _clone_covering(base)
    count = max(workbench.config.training_points)
    lats, lngs = taxi_points(count, seed=workbench.config.seed + 1000)
    train_super_covering(
        covering, neighborhoods, cell_ids_from_lat_lng_arrays(lats, lngs)
    )
    rate = benchmark(solely_true_hit_rate, covering, ids)
    benchmark.extra_info["sth_pct"] = round(rate * 100.0, 1)
