"""Table 1 kernels: individual covering computation and the super-covering
merge with precision-preserving conflict resolution."""

import pytest

from repro.cells.coverer import RegionCoverer
from repro.core.builder import DEFAULT_COVERING_OPTIONS, DEFAULT_INTERIOR_OPTIONS
from repro.core.precision import refine_to_precision
from repro.core.super_covering import build_super_covering
from repro.bench.workbench import _clone_covering


@pytest.mark.parametrize("dataset", ["boroughs", "neighborhoods"])
def test_individual_coverings(benchmark, workbench, dataset):
    polygons = workbench.polygons(dataset)
    coverer = RegionCoverer(DEFAULT_COVERING_OPTIONS)

    def build():
        return [coverer.covering(p) for p in polygons]

    coverings = benchmark(build)
    benchmark.extra_info["num_polygons"] = len(polygons)
    benchmark.extra_info["total_cells"] = sum(len(c) for c in coverings)


def test_interior_coverings(benchmark, workbench):
    polygons = workbench.polygons("neighborhoods")
    coverer = RegionCoverer(DEFAULT_INTERIOR_OPTIONS)
    result = benchmark(lambda: [coverer.interior_covering(p) for p in polygons])
    benchmark.extra_info["total_cells"] = sum(len(c) for c in result)


def test_super_covering_merge(benchmark, workbench):
    polygons = workbench.polygons("neighborhoods")
    coverer = RegionCoverer(DEFAULT_COVERING_OPTIONS)
    interior = RegionCoverer(DEFAULT_INTERIOR_OPTIONS)
    per_polygon = [
        (pid, coverer.covering(p), interior.interior_covering(p))
        for pid, p in enumerate(polygons)
    ]
    covering = benchmark(build_super_covering, per_polygon)
    benchmark.extra_info["num_cells"] = covering.num_cells


def test_precision_refinement_60m(benchmark, workbench):
    polygons = workbench.polygons("neighborhoods")
    base, _ = workbench.base_covering("neighborhoods")

    def refine():
        covering = _clone_covering(base)
        refine_to_precision(covering, polygons, 60.0)
        return covering

    covering = benchmark(refine)
    benchmark.extra_info["num_cells"] = covering.num_cells
