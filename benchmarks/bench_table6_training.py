"""Table 6 kernels: the training pass and the trained accurate join."""

import numpy as np
import pytest

from repro.bench.workbench import _clone_covering
from repro.cells.vectorized import cell_ids_from_lat_lng_arrays
from repro.core.act import AdaptiveCellTrie
from repro.core.joins import accurate_join
from repro.core.lookup_table import LookupTable
from repro.core.training import train_super_covering
from repro.datasets import taxi_points


@pytest.fixture(scope="module")
def training_ids(workbench):
    count = max(workbench.config.training_points)
    lats, lngs = taxi_points(count, seed=workbench.config.seed + 1000)
    return cell_ids_from_lat_lng_arrays(lats, lngs)


def test_training_pass(benchmark, workbench, neighborhoods, training_ids):
    base, _ = workbench.base_covering("neighborhoods")

    def train():
        covering = _clone_covering(base)
        return train_super_covering(covering, neighborhoods, training_ids), covering

    (report, covering) = benchmark(train)
    benchmark.extra_info["cells_split"] = report.cells_split
    benchmark.extra_info["cells_after"] = covering.num_cells


def test_trained_accurate_join(benchmark, workbench, taxi, neighborhoods, training_ids):
    lats, lngs, ids = taxi
    base, _ = workbench.base_covering("neighborhoods")
    covering = _clone_covering(base)
    train_super_covering(covering, neighborhoods, training_ids)
    store = AdaptiveCellTrie(covering, 8, LookupTable())
    result = benchmark(
        accurate_join, store, store.lookup_table, ids, neighborhoods, lngs, lats
    )
    benchmark.extra_info["pip_per_point"] = round(result.num_pip_tests / len(ids), 4)


def test_untrained_accurate_join(benchmark, workbench, taxi, neighborhoods):
    lats, lngs, ids = taxi
    store = workbench.store("neighborhoods", None, "ACT4")
    result = benchmark(
        accurate_join, store, store.lookup_table, ids, neighborhoods, lngs, lats
    )
    benchmark.extra_info["pip_per_point"] = round(result.num_pip_tests / len(ids), 4)
