"""Table 2 kernels: build times of the physical representations."""

import pytest

from repro.baselines import BTreeStore, SortedVectorStore
from repro.core.act import AdaptiveCellTrie
from repro.core.lookup_table import LookupTable


@pytest.mark.parametrize("fanout_bits", [2, 4, 8], ids=["ACT1", "ACT2", "ACT4"])
def test_act_build(benchmark, workbench, fanout_bits):
    covering, _ = workbench.super_covering("neighborhoods", 60.0)
    act = benchmark(AdaptiveCellTrie, covering, fanout_bits, LookupTable())
    benchmark.extra_info["num_nodes"] = act.num_nodes
    benchmark.extra_info["size_mib"] = round(act.size_bytes / 2**20, 2)


def test_gbt_build(benchmark, workbench):
    covering, _ = workbench.super_covering("neighborhoods", 60.0)
    store = benchmark(BTreeStore, covering, LookupTable())
    benchmark.extra_info["height"] = store.height
    benchmark.extra_info["size_mib"] = round(store.size_bytes / 2**20, 2)


def test_lb_build(benchmark, workbench):
    covering, _ = workbench.super_covering("neighborhoods", 60.0)
    store = benchmark(SortedVectorStore, covering, LookupTable())
    benchmark.extra_info["size_mib"] = round(store.size_bytes / 2**20, 2)
