import pathlib
import re

from setuptools import find_packages, setup

ROOT = pathlib.Path(__file__).parent


def read_version() -> str:
    """Single-source the version from repro.__version__."""
    init = (ROOT / "src" / "repro" / "__init__.py").read_text(encoding="utf-8")
    match = re.search(r'^__version__ = "([^"]+)"', init, re.MULTILINE)
    if match is None:
        raise RuntimeError("__version__ not found in src/repro/__init__.py")
    return match.group(1)


setup(
    name="repro-point-polygon-join",
    version=read_version(),
    description=(
        "Reproduction of 'Adaptive Main-Memory Indexing for High-Performance "
        "Point-Polygon Joins' (EDBT 2020), with an online join service"
    ),
    long_description=(ROOT / "README.md").read_text(encoding="utf-8"),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.22"],
    entry_points={
        "console_scripts": [
            # The repo-specific static analyzer (same as `python -m repro.analysis`).
            "repro-analyze=repro.analysis.__main__:main",
        ],
    },
    extras_require={
        # scipy backs the synthetic Voronoi polygon generators
        # (repro.datasets), which the tests and benches build on.
        "datasets": ["scipy>=1.8"],
        "test": ["pytest", "pytest-benchmark", "hypothesis", "scipy>=1.8"],
    },
)
