#!/usr/bin/env python3
"""Quickstart: build a polygon index and join points against it.

Demonstrates the two join modes of the paper on a toy city:

* approximate join with a 4 m precision bound (no geometric tests at all),
* accurate join with PIP refinement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import PolygonIndex, Polygon

# Three "zones" of a toy city: two rectangles and a triangle, in
# (lng, lat) order, near downtown Manhattan.
zones = [
    Polygon([(-74.020, 40.700), (-74.000, 40.700), (-74.000, 40.715), (-74.020, 40.715)]),
    Polygon([(-74.000, 40.700), (-73.980, 40.700), (-73.980, 40.715), (-74.000, 40.715)]),
    Polygon([(-74.010, 40.715), (-73.990, 40.715), (-74.000, 40.7285)]),
]
zone_names = ["west-rect", "east-rect", "north-triangle"]


def main() -> None:
    # ------------------------------------------------------------------
    # Build an index with a 4 m precision bound: every false positive of
    # the approximate join lies within 4 m of its zone's boundary.
    # ------------------------------------------------------------------
    index = PolygonIndex.build(zones, precision_meters=4.0)
    info = index.describe()
    print(f"built index: {info['num_cells']} cells, "
          f"{info['size_bytes'] / 1024:.0f} KiB, "
          f"{info['build_seconds']:.2f}s")

    # ------------------------------------------------------------------
    # Generate points and join.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(0)
    lngs = rng.uniform(-74.025, -73.975, 100_000)
    lats = rng.uniform(40.695, 40.730, 100_000)

    approx = index.join(lats, lngs)  # approximate: no PIP tests
    exact = index.join(lats, lngs, exact=True)  # accurate: PIP refinement

    print("\nzone                approx count   exact count")
    for name, a, e in zip(zone_names, approx.counts, exact.counts):
        print(f"{name:<18} {a:>13} {e:>13}")
    print(f"\napproximate join ran {approx.num_pip_tests} PIP tests "
          f"(precision bound guarantees <4 m error)")
    print(f"accurate join ran {exact.num_pip_tests} PIP tests "
          f"({exact.sth_rate:.1%} of points skipped refinement entirely)")

    # ------------------------------------------------------------------
    # Single-point lookups.
    # ------------------------------------------------------------------
    print("\npoint lookups:")
    for lat, lng in [(40.707, -74.012), (40.72, -74.0), (40.75, -74.0)]:
        hits = index.containing_polygons(lat, lng)
        names = [zone_names[pid] for pid in hits] or ["(no zone)"]
        print(f"  ({lat}, {lng}) -> {', '.join(names)}")


if __name__ == "__main__":
    main()
