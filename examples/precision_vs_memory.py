#!/usr/bin/env python3
"""Explore the paper's central trade-off: precision vs memory vs speed.

Sweeps the precision bound of the approximate index over a polygon dataset
and reports, for each setting: cell count, index size, probe throughput,
and the *measured* worst-case false-positive distance (always below the
bound — the guarantee of Section 3.2).  Also shows the accurate index
(trained and untrained) as the low-memory alternative the paper recommends
when the precision-bounded index does not fit the budget.

Run:  python examples/precision_vs_memory.py
"""

import math
import time

import numpy as np

from repro import PolygonIndex
from repro.cells import cell_ids_from_lat_lng_arrays
from repro.cells.metrics import EARTH_RADIUS_METERS
from repro.datasets import polygon_dataset, taxi_points
from repro.geo.pip import contains_points

_METERS_PER_DEGREE = EARTH_RADIUS_METERS * math.pi / 180.0


def false_positive_distance(polygon, lng: float, lat: float) -> float:
    """Planar distance (meters) from a point to a polygon's boundary."""
    x0, y0, x1, y1 = polygon.all_edges()
    sx = math.cos(math.radians(lat)) * _METERS_PER_DEGREE
    ax = (x0 - lng) * sx
    ay = (y0 - lat) * _METERS_PER_DEGREE
    bx = (x1 - lng) * sx
    by = (y1 - lat) * _METERS_PER_DEGREE
    dx, dy = bx - ax, by - ay
    length_sq = dx * dx + dy * dy
    t = np.clip(
        np.where(length_sq > 0, -(ax * dx + ay * dy) / np.where(length_sq > 0, length_sq, 1), 0),
        0.0,
        1.0,
    )
    px, py = ax + t * dx, ay + t * dy
    return float(np.sqrt(px * px + py * py).min())


def main() -> None:
    zones = polygon_dataset("neighborhoods")
    lats, lngs = taxi_points(300_000, seed=5)
    ids = cell_ids_from_lat_lng_arrays(lats, lngs)
    truth = np.vstack([contains_points(p, lngs, lats) for p in zones])

    print(f"{'mode':<22} {'cells':>9} {'MiB':>7} {'M pts/s':>8} "
          f"{'FP pairs':>9} {'max FP dist':>12}")

    for precision in (60.0, 15.0, 4.0):
        index = PolygonIndex.build(zones, precision_meters=precision)
        start = time.perf_counter()
        result = index.join(lats, lngs, cell_ids=ids, materialize=True)
        throughput = len(ids) / (time.perf_counter() - start) / 1e6
        false_positives = [
            (pt, pid)
            for pt, pid in zip(result.pair_points, result.pair_polygons)
            if not truth[pid, pt]
        ]
        worst = max(
            (false_positive_distance(zones[pid], lngs[pt], lats[pt])
             for pt, pid in false_positives),
            default=0.0,
        )
        print(f"{'approx ' + format(precision, 'g') + 'm':<22} "
              f"{index.num_cells:>9,} {index.size_bytes / 2**20:>7.1f} "
              f"{throughput:>8.2f} {len(false_positives):>9,} {worst:>10.1f} m")

    for label, train in (("accurate untrained", None), ("accurate trained", 100_000)):
        kwargs = {}
        if train:
            hist_lats, hist_lngs = taxi_points(train, seed=2009)
            kwargs["training_cell_ids"] = cell_ids_from_lat_lng_arrays(
                hist_lats, hist_lngs
            )
        index = PolygonIndex.build(zones, **kwargs)
        start = time.perf_counter()
        result = index.join(lats, lngs, exact=True, cell_ids=ids)
        throughput = len(ids) / (time.perf_counter() - start) / 1e6
        assert (result.counts == truth.sum(axis=1)).all()
        print(f"{label:<22} {index.num_cells:>9,} {index.size_bytes / 2**20:>7.1f} "
              f"{throughput:>8.2f} {'0':>9} {'exact':>12}")


if __name__ == "__main__":
    main()
