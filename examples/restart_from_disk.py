#!/usr/bin/env python3
"""Restart from disk: save an index once, attach it on every restart.

A FORMAT_VERSION 3 file is one flat blob of packed numpy buffers, so
``load_index`` is an ``np.load(..., mmap_mode="r")`` attach — the trie,
the store entries, the lookup table, and the refinement tables come back
as memory-mapped views, with no store rebuild and bit-identical joins.

Run:  python examples/restart_from_disk.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import FlatPolygonIndex, PolygonIndex, load_index, save_index
from repro.geo.polygon import regular_polygon

# A grid of 25 "delivery zones".
zones = [
    regular_polygon((-74.0 + gx * 0.02, 40.70 + gy * 0.02), 0.011, 24)
    for gx in range(5)
    for gy in range(5)
]


def main() -> None:
    # ------------------------------------------------------------------
    # First process life: build (expensive) and save (one flat file).
    # ------------------------------------------------------------------
    started = time.perf_counter()
    index = PolygonIndex.build(zones, precision_meters=15.0)
    build_seconds = time.perf_counter() - started

    path = Path(tempfile.mkdtemp()) / "zones.idx"
    save_index(index, path)
    print(f"built in {build_seconds:.2f}s, "
          f"saved {path.stat().st_size / 1024:.0f} KiB to {path}")

    # ------------------------------------------------------------------
    # Every later life: attach. load_index maps the file read-only
    # (np.load(..., mmap_mode="r") under the hood) and wraps the buffers
    # in a FlatPolygonIndex — pages fault in lazily as probes touch them.
    # ------------------------------------------------------------------
    started = time.perf_counter()
    restored = load_index(path)
    attach_seconds = time.perf_counter() - started
    assert isinstance(restored, FlatPolygonIndex)
    print(f"attached in {attach_seconds * 1e3:.1f}ms "
          f"({build_seconds / attach_seconds:.0f}x faster than the build)")

    # ------------------------------------------------------------------
    # Joins on the attached index are bit-identical to the original.
    # ------------------------------------------------------------------
    rng = np.random.default_rng(7)
    lngs = rng.uniform(-74.02, -73.90, 100_000)
    lats = rng.uniform(40.68, 40.80, 100_000)
    a = index.join(lats, lngs, exact=True)
    b = restored.join(lats, lngs, exact=True)
    assert np.array_equal(a.counts, b.counts)
    print(f"joined 100,000 points: {int(b.counts.sum()):,} hits, "
          "bit-identical to the pre-restart index")


if __name__ == "__main__":
    main()
