#!/usr/bin/env python3
"""Online geofencing on top of the JoinService.

The streaming scenario of ``geofence_alerts.py``, rewritten as a *service*:
two polygon layers (surge-pricing zones and boroughs) are hosted behind one
``JoinService``; driver apps issue single-point lookups from many threads
(coalesced into micro-batches), while the analytics pipeline submits whole
position batches fanned out to both layers.  A skewed check-in stream keeps
the hot-cell cache busy, and the service's stats snapshot reports p50/p99
latency, throughput, and cache hit rate.

Run:  python examples/geofence_service.py
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro import JoinService, PolygonIndex
from repro.datasets import polygon_dataset, venue_points


def main() -> None:
    print("building two geofence layers with a 4 m precision bound...")
    start = time.perf_counter()
    layers = {
        "zones": PolygonIndex.build(
            polygon_dataset("neighborhoods"), precision_meters=4.0
        ),
        "boroughs": PolygonIndex.build(
            polygon_dataset("boroughs"), precision_meters=4.0
        ),
    }
    print(f"  built in {time.perf_counter() - start:.1f}s: "
          + ", ".join(f"{name} ({len(ix.polygons)} polygons)"
                      for name, ix in layers.items()))

    with JoinService(layers, default_layer="zones", num_threads=4) as service:
        # --- Driver apps: concurrent single-point lookups -------------
        num_lookups = 2_000
        lats, lngs = venue_points(num_lookups, num_venues=500)
        print(f"\n{num_lookups:,} concurrent lookups from 8 client threads...")
        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=8) as clients:
            futures = [
                clients.submit(service.lookup, lat, lng)
                for lat, lng in zip(lats, lngs)
            ]
            hits = sum(bool(f.result()) for f in futures)
        elapsed = time.perf_counter() - start
        print(f"  {num_lookups / elapsed:,.0f} lookups/s, "
              f"{hits:,} inside a surge zone")

        # --- Analytics: batches fanned out to every layer -------------
        batch_size = 100_000
        print(f"\nfanning a {batch_size:,}-position batch out to "
              f"{list(service.layers)}...")
        lats, lngs = venue_points(batch_size, num_venues=2_000, seed=7)
        start = time.perf_counter()
        per_layer = service.join_layers(lats, lngs)
        elapsed = time.perf_counter() - start
        for name, result in per_layer.items():
            busiest = int(result.counts.argmax())
            print(f"  {name:>9}: {result.num_pairs:,} hits, busiest polygon "
                  f"#{busiest} ({result.counts[busiest]:,} positions)")
        print(f"  {batch_size * len(per_layer) / elapsed / 1e6:.1f} M "
              f"positions/s across layers")

        # --- Observability --------------------------------------------
        stats = service.stats()
        print(f"\nservice stats: {stats.requests:,} requests, "
              f"{stats.points:,} points, {stats.dispatches:,} dispatches "
              f"(mean batch {stats.mean_batch_size:,.1f})")
        print(f"  latency p50 {stats.p50_ms:.2f} ms, p99 {stats.p99_ms:.2f} ms; "
              f"throughput {stats.throughput_pps / 1e6:.1f} M points/s")
        for name, cache in stats.cache.items():
            print(f"  cache[{name}]: {cache.hit_rate:.1%} hit rate "
                  f"({cache.hits:,} hits / {cache.requests:,} probes, "
                  f"{cache.size:,} cells)")


if __name__ == "__main__":
    main()
