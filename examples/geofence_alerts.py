#!/usr/bin/env python3
"""Streaming geofencing: the Uber-style motivating use case of the paper.

A fleet of vehicles reports positions in batches; each position must be
mapped to its geofence (surge-pricing zone) in near real time.  Because GPS
positions are only accurate to a few meters anyway, the *approximate* join
with a 4 m precision bound answers every batch without a single geometric
test — the scenario where the paper's index shines.

Run:  python examples/geofence_alerts.py
"""

import time

import numpy as np

from repro import PolygonIndex
from repro.datasets import polygon_dataset, taxi_points


def simulate_stream(num_batches: int, batch_size: int, seed: int = 0):
    """Yield batches of (lats, lngs) vehicle positions."""
    for batch in range(num_batches):
        lats, lngs = taxi_points(batch_size, seed=seed + batch)
        yield lats, lngs


def main() -> None:
    print("building geofences (289 zones) with a 4 m precision bound...")
    zones = polygon_dataset("neighborhoods")
    start = time.perf_counter()
    index = PolygonIndex.build(zones, precision_meters=4.0)
    print(f"  built in {time.perf_counter() - start:.1f}s: "
          f"{index.num_cells:,} cells, {index.size_bytes / 2**20:.1f} MiB")

    batch_size = 200_000
    num_batches = 10
    print(f"\nprocessing {num_batches} batches of {batch_size:,} positions...")
    total_points = 0
    total_seconds = 0.0
    zone_totals = np.zeros(len(zones), dtype=np.int64)
    for batch, (lats, lngs) in enumerate(simulate_stream(num_batches, batch_size)):
        start = time.perf_counter()
        result = index.join(lats, lngs)  # approximate: zero PIP tests
        elapsed = time.perf_counter() - start
        total_points += len(lats)
        total_seconds += elapsed
        zone_totals += result.counts
        print(f"  batch {batch:>2}: {len(lats) / elapsed / 1e6:5.1f} M positions/s, "
              f"{result.num_pairs:,} zone hits")

    print(f"\noverall: {total_points / total_seconds / 1e6:.1f} M positions/s "
          f"sustained, 0 geometric tests")
    busiest = np.argsort(zone_totals)[::-1][:3]
    print("surge candidates (busiest zones):",
          ", ".join(f"#{z} ({zone_totals[z]:,})" for z in busiest))


if __name__ == "__main__":
    main()
