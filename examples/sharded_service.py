#!/usr/bin/env python3
"""Share-nothing sharded serving: one process per spatial partition.

Builds the neighborhoods layer once, plans a 4-way Hilbert cell-id range
partition of its covering (cut points balanced on owned work, so a
straddler counts toward exactly one shard's share), and serves a
probe-heavy skewed stream from a ``ShardedJoinService``: the layer's
geometry plane is published once in a single shared-memory segment,
each worker attaches it read-only next to its private coverage plane,
every batch is scattered through shared memory to the shard processes
that own its points, and the partial results are merged bit-identically.
A swap then retrains the layer on observed traffic and fans the new
snapshot out to every shard with zero downtime.

Run:  python examples/sharded_service.py
"""

import time

from repro import PolygonIndex
from repro.datasets import polygon_dataset, shard_probe_points
from repro.serve import ShardPlan, ShardedJoinService

NUM_SHARDS = 4


def main() -> None:
    print("building the neighborhoods layer (15 m precision bound)...")
    start = time.perf_counter()
    index = PolygonIndex.build(
        polygon_dataset("neighborhoods"), precision_meters=15.0
    )
    print(f"  built in {time.perf_counter() - start:.1f}s: "
          f"{index.num_polygons} polygons, {index.num_cells:,} cells")

    plan = ShardPlan.from_index(index, NUM_SHARDS)
    print(f"\nshard plan ({NUM_SHARDS} Hilbert cell-id ranges, "
          f"replication factor {plan.replication_factor:.2f}):")
    for shard in range(NUM_SHARDS):
        print(f"  shard {shard}: {plan.owned_weights[shard]:,} owned + "
              f"{plan.borrowed_weights[shard]:,} borrowed entries, "
              f"{len(plan.owned[shard])} polygons homed here, "
              f"{len(plan.borrowed[shard])} borrowed straddlers")

    lats, lngs = shard_probe_points(200_000)
    reference = index.join(lats, lngs, exact=True)

    print(f"\nspawning {NUM_SHARDS} shard workers...")
    with ShardedJoinService(index, num_shards=NUM_SHARDS) as service:
        geometry_bytes, coverage_bytes = service.plane_bytes()
        print(f"  two-layer publication: {geometry_bytes / 1024:,.0f} KiB "
              f"geometry shared once, {coverage_bytes / 1024:,.0f} KiB "
              f"per-shard coverage planes (replication factor "
              f"{service.replication_factor():.2f})")
        start = time.perf_counter()
        for lo in range(0, len(lats), 32_768):
            service.join(lats[lo:lo + 32_768], lngs[lo:lo + 32_768], exact=True)
        elapsed = time.perf_counter() - start
        check = service.join(lats, lngs, exact=True)
        assert (check.counts == reference.counts).all(), "sharding must be invisible"
        print(f"  streamed {len(lats):,} exact-join points in {elapsed:.2f}s "
              f"({len(lats) / elapsed:,.0f} points/s), counts bit-identical "
              "to PolygonIndex.join")

        # Zero-downtime retrain + swap, fanned out per shard.
        trained = index.retrained(
            index.cell_ids_for(lats[:100_000], lngs[:100_000]), order="hot"
        )
        service.swap_layer("default", trained)
        after = service.join(lats, lngs, exact=True)
        assert (after.counts == reference.counts).all()
        print(f"  swapped in retrained snapshot v{trained.version} on every "
              f"shard; solely-true-hit rate {reference.sth_rate:.1%} -> "
              f"{after.sth_rate:.1%}")

        stats = service.stats()
        print(f"\nmerged stats: {stats.requests} requests, "
              f"p50 {stats.p50_ms:.1f} ms, cache hit rate "
              f"{stats.cache_hit_rate:.1%}")
        for shard in stats.shards:
            print(f"  shard {shard.shard}: {shard.stats.points:,} points, "
                  f"{shard.num_owned} owned + {shard.num_borrowed} borrowed "
                  f"polygons, p50 {shard.stats.p50_ms:.1f} ms")


if __name__ == "__main__":
    main()
