#!/usr/bin/env python3
"""End-to-end telemetry: traces, metrics, and exports from a live service.

Builds the neighborhoods layer, attaches an ``Observability`` bundle to a
sharded service (inline backend, so the demo runs anywhere), streams a
skewed workload, and then plays dashboard: prints one dispatch's span
tree (front scatter/gather/merge plus the shard workers' own probe and
refine phases, stitched across the process boundary), the per-phase
latency histograms, a Prometheus scrape excerpt, and the lifecycle event
log — including a slow-dispatch exemplar trace.

Run:  python examples/telemetry_dashboard.py
"""

import time

from repro import Observability, PolygonIndex, stats_json
from repro.datasets import polygon_dataset, shard_probe_points
from repro.obs import format_trace
from repro.serve import ShardedJoinService

NUM_SHARDS = 2
BATCH = 8_192


def main() -> None:
    print("building the neighborhoods layer (15 m precision bound)...")
    start = time.perf_counter()
    index = PolygonIndex.build(
        polygon_dataset("neighborhoods"), precision_meters=15.0
    )
    print(f"  built in {time.perf_counter() - start:.1f}s")

    # slow_trace_ms=0 turns every dispatch into an exemplar, so the demo
    # always has one to show; production would use a real budget (say 50).
    obs = Observability(slow_trace_ms=0.0)
    lats, lngs = shard_probe_points(60_000)

    with ShardedJoinService(
        index, num_shards=NUM_SHARDS, backend="inline", obs=obs
    ) as service:
        for lo in range(0, len(lats), BATCH):
            service.join(lats[lo:lo + BATCH], lngs[lo:lo + BATCH], exact=True)
        trace = obs.tracer.take_last_trace()
        stats = service.stats()

    print("\n=== last dispatch trace (front + shard workers) ===")
    print(format_trace(trace))

    print("\n=== per-phase latency (from serve_phase_seconds) ===")
    for metric in obs.metrics.collect():
        if metric.name != "serve_phase_seconds":
            continue
        phase = metric.labels["phase"]
        print(f"  {phase:>12}: n={metric.count:<5} "
              f"p50={metric.percentile(50) * 1e3:7.3f}ms "
              f"p99={metric.percentile(99) * 1e3:7.3f}ms")

    print("\n=== Prometheus scrape (excerpt) ===")
    exposition = obs.prometheus(stats=stats)
    for line in exposition.splitlines():
        if line.startswith(("repro_serve_dispatches", "repro_serve_points",
                            "repro_service_throughput", "repro_service_shard")):
            print(f"  {line}")
    print(f"  ... ({len(exposition.splitlines())} lines total)")

    print("\n=== event log ===")
    for event in obs.events.events():
        if event["kind"] == "slow_dispatch":
            print(f"  slow_dispatch: {event['seconds'] * 1e3:.2f}ms, "
                  f"{len(event['trace'])} spans retained")
        else:
            fields = {k: v for k, v in event.items() if k not in ("ts", "kind")}
            print(f"  {event['kind']}: {fields}")

    print("\n=== stats_json (one line, ready for a JSONL sink) ===")
    print(f"  {stats_json(stats)[:160]}...")
    obs.close()


if __name__ == "__main__":
    main()
