#!/usr/bin/env python3
"""Taxi pick-up analytics: the paper's motivating workload.

Joins a synthetic NYC-analog taxi point stream against neighborhood
polygons with the *accurate* algorithm, then shows how training the index
on last year's pick-ups (Section 3.3.1 of the paper) cuts the expensive
point-in-polygon tests where the traffic actually is.

Run:  python examples/taxi_pickup_zones.py
"""

import time

import numpy as np

from repro import PolygonIndex
from repro.cells import cell_ids_from_lat_lng_arrays
from repro.datasets import polygon_dataset, taxi_points


def measure(index: PolygonIndex, lats, lngs, ids) -> tuple[float, object]:
    start = time.perf_counter()
    result = index.join(lats, lngs, exact=True, cell_ids=ids)
    return time.perf_counter() - start, result


def main() -> None:
    print("generating neighborhoods and taxi points...")
    neighborhoods = polygon_dataset("neighborhoods")
    # "2009": historical points used for training; "2010+": the live query
    # stream (same spatial process, independent draw).
    hist_lats, hist_lngs = taxi_points(200_000, seed=2009)
    live_lats, live_lngs = taxi_points(500_000, seed=2010)
    hist_ids = cell_ids_from_lat_lng_arrays(hist_lats, hist_lngs)
    live_ids = cell_ids_from_lat_lng_arrays(live_lats, live_lngs)

    print("\nbuilding untrained index...")
    untrained = PolygonIndex.build(neighborhoods)
    seconds, result = measure(untrained, live_lats, live_lngs, live_ids)
    throughput = len(live_ids) / seconds / 1e6
    print(f"untrained: {throughput:.2f} M points/s, "
          f"{result.num_pip_tests} PIP tests, STH {result.sth_rate:.1%}")

    print("\nbuilding index trained with 200K historical pick-ups...")
    trained = PolygonIndex.build(neighborhoods, training_cell_ids=hist_ids)
    report = trained.training_report
    print(f"training: {report.cells_split} cells split, "
          f"{report.cells_added} cells added")
    seconds_t, result_t = measure(trained, live_lats, live_lngs, live_ids)
    throughput_t = len(live_ids) / seconds_t / 1e6
    print(f"trained:   {throughput_t:.2f} M points/s, "
          f"{result_t.num_pip_tests} PIP tests, STH {result_t.sth_rate:.1%}")

    print(f"\nspeedup from training: {throughput_t / throughput:.2f}x "
          f"(PIP tests reduced by "
          f"{1 - result_t.num_pip_tests / max(1, result.num_pip_tests):.1%})")

    # Results are identical — training never changes accurate answers.
    assert (result.counts == result_t.counts).all()

    top = np.argsort(result.counts)[::-1][:5]
    print("\nbusiest neighborhoods (pick-up counts):")
    for pid in top:
        print(f"  neighborhood #{pid}: {result.counts[pid]:,} pick-ups")


if __name__ == "__main__":
    main()
